#include "bayes/factor.h"

#include <algorithm>

#include "base/check.h"

namespace tbc {

Factor::Factor(std::vector<BnVar> vars, std::vector<uint32_t> cards)
    : vars_(std::move(vars)), cards_(std::move(cards)) {
  TBC_CHECK(vars_.size() == cards_.size());
  size_t size = 1;
  for (uint32_t c : cards_) size *= c;
  values_.assign(size, 1.0);
}

Factor Factor::FromCpt(const BayesianNetwork& net, BnVar v) {
  std::vector<BnVar> vars = net.parents(v);
  vars.push_back(v);
  std::vector<uint32_t> cards;
  for (BnVar u : vars) cards.push_back(net.cardinality(u));
  Factor f(std::move(vars), std::move(cards));
  // CPT layout matches the factor layout (parents..., var; last fastest).
  for (size_t i = 0; i < f.values_.size(); ++i) {
    f.values_[i] = net.cpt(v)[i];
  }
  return f;
}

size_t Factor::FlatIndex(const BnInstantiation& inst) const {
  size_t index = 0;
  for (size_t i = 0; i < vars_.size(); ++i) {
    TBC_DCHECK(inst[vars_[i]] != kUnobserved);
    index = index * cards_[i] + static_cast<size_t>(inst[vars_[i]]);
  }
  return index;
}

double Factor::At(const BnInstantiation& inst) const {
  return values_[FlatIndex(inst)];
}

void Factor::Set(const BnInstantiation& inst, double value) {
  values_[FlatIndex(inst)] = value;
}

std::vector<int> Factor::Decode(size_t flat_index) const {
  std::vector<int> values(vars_.size());
  for (size_t i = vars_.size(); i-- > 0;) {
    values[i] = static_cast<int>(flat_index % cards_[i]);
    flat_index /= cards_[i];
  }
  return values;
}

Factor Factor::Multiply(const Factor& a, const Factor& b) {
  std::vector<BnVar> vars = a.vars_;
  std::vector<uint32_t> cards = a.cards_;
  for (size_t i = 0; i < b.vars_.size(); ++i) {
    if (std::find(vars.begin(), vars.end(), b.vars_[i]) == vars.end()) {
      vars.push_back(b.vars_[i]);
      cards.push_back(b.cards_[i]);
    }
  }
  Factor out(vars, cards);
  // Iterate the output table, projecting onto each input's scope.
  BnInstantiation inst;
  BnVar max_var = 0;
  for (BnVar v : vars) max_var = std::max(max_var, v);
  inst.assign(max_var + 1, kUnobserved);
  for (size_t i = 0; i < out.values_.size(); ++i) {
    std::vector<int> vals = out.Decode(i);
    for (size_t k = 0; k < vars.size(); ++k) inst[vars[k]] = vals[k];
    out.values_[i] = a.At(inst) * b.At(inst);
  }
  return out;
}

Factor Factor::SumOut(BnVar v) const {
  const auto it = std::find(vars_.begin(), vars_.end(), v);
  TBC_CHECK(it != vars_.end());
  const size_t pos = static_cast<size_t>(it - vars_.begin());
  std::vector<BnVar> vars = vars_;
  std::vector<uint32_t> cards = cards_;
  const uint32_t card = cards[pos];
  vars.erase(vars.begin() + pos);
  cards.erase(cards.begin() + pos);
  Factor out(vars, cards);
  std::fill(out.values_.begin(), out.values_.end(), 0.0);
  BnInstantiation inst;
  BnVar max_var = v;
  for (BnVar u : vars_) max_var = std::max(max_var, u);
  inst.assign(max_var + 1, kUnobserved);
  for (size_t i = 0; i < out.values_.size(); ++i) {
    std::vector<int> vals = out.Decode(i);
    for (size_t k = 0; k < vars.size(); ++k) inst[vars[k]] = vals[k];
    double sum = 0.0;
    for (uint32_t x = 0; x < card; ++x) {
      inst[v] = static_cast<int>(x);
      sum += At(inst);
    }
    out.values_[i] = sum;
  }
  return out;
}

Factor Factor::MaxOut(BnVar v) const {
  const auto it = std::find(vars_.begin(), vars_.end(), v);
  TBC_CHECK(it != vars_.end());
  const size_t pos = static_cast<size_t>(it - vars_.begin());
  std::vector<BnVar> vars = vars_;
  std::vector<uint32_t> cards = cards_;
  const uint32_t card = cards[pos];
  vars.erase(vars.begin() + pos);
  cards.erase(cards.begin() + pos);
  Factor out(vars, cards);
  BnInstantiation inst;
  BnVar max_var = v;
  for (BnVar u : vars_) max_var = std::max(max_var, u);
  inst.assign(max_var + 1, kUnobserved);
  for (size_t i = 0; i < out.values_.size(); ++i) {
    std::vector<int> vals = out.Decode(i);
    for (size_t k = 0; k < vars.size(); ++k) inst[vars[k]] = vals[k];
    double best = 0.0;
    for (uint32_t x = 0; x < card; ++x) {
      inst[v] = static_cast<int>(x);
      best = std::max(best, At(inst));
    }
    out.values_[i] = best;
  }
  return out;
}

Factor Factor::Restrict(BnVar v, int value) const {
  const auto it = std::find(vars_.begin(), vars_.end(), v);
  if (it == vars_.end()) return *this;
  Factor out = *this;
  for (size_t i = 0; i < out.values_.size(); ++i) {
    std::vector<int> vals = out.Decode(i);
    const size_t pos = static_cast<size_t>(it - vars_.begin());
    if (vals[pos] != value) out.values_[i] = 0.0;
  }
  return out;
}

double Factor::Total() const {
  double t = 0.0;
  for (double v : values_) t += v;
  return t;
}

double Factor::Max() const {
  double m = 0.0;
  for (double v : values_) m = std::max(m, v);
  return m;
}

}  // namespace tbc
