#ifndef TBC_BAYES_FACTOR_H_
#define TBC_BAYES_FACTOR_H_

#include <vector>

#include "bayes/network.h"

namespace tbc {

/// A factor: a nonnegative table over a subset of network variables.
/// The building block of variable elimination (the library's dedicated
/// baseline for BN inference, against which the circuit-based reductions
/// of paper §2.2 are validated and benchmarked).
class Factor {
 public:
  /// Factor over `vars` (with the given cardinalities), initialized to 1.
  Factor(std::vector<BnVar> vars, std::vector<uint32_t> cards);

  /// CPT of a network variable as a factor over {parents..., var}.
  static Factor FromCpt(const BayesianNetwork& net, BnVar v);

  const std::vector<BnVar>& vars() const { return vars_; }
  size_t table_size() const { return values_.size(); }

  /// Entry access via a per-network instantiation (values for this
  /// factor's vars must be set).
  double At(const BnInstantiation& inst) const;
  void Set(const BnInstantiation& inst, double value);

  /// Raw table access (mixed-radix over vars(), last var fastest).
  double value(size_t flat_index) const { return values_[flat_index]; }
  /// Decodes a flat index into per-variable values (parallel to vars()).
  std::vector<int> Decode(size_t flat_index) const;

  /// Pointwise product over the union of scopes.
  static Factor Multiply(const Factor& a, const Factor& b);

  /// Sums out / maximizes out a variable (must be in scope).
  Factor SumOut(BnVar v) const;
  Factor MaxOut(BnVar v) const;

  /// Zeroes out entries incompatible with `value` of `v` (evidence).
  Factor Restrict(BnVar v, int value) const;

  /// Sum of all entries.
  double Total() const;
  /// Maximum entry.
  double Max() const;

 private:
  size_t FlatIndex(const BnInstantiation& inst) const;

  std::vector<BnVar> vars_;
  std::vector<uint32_t> cards_;
  std::vector<double> values_;
};

}  // namespace tbc

#endif  // TBC_BAYES_FACTOR_H_
