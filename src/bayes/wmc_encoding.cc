#include "bayes/wmc_encoding.h"

#include "base/check.h"

namespace tbc {

WmcEncoding::WmcEncoding(const BayesianNetwork& net, Options options)
    : net_(net) {
  constexpr double kEps = 1e-12;
  auto deterministic = [&](double theta) {
    return options.exploit_determinism && (theta < kEps || theta > 1.0 - kEps);
  };
  // Allocate indicator variables.
  Var next = 0;
  indicator_base_.resize(net.num_vars());
  for (BnVar v = 0; v < net.num_vars(); ++v) {
    indicator_base_[v] = next;
    next += net.cardinality(v);
  }
  // Parameter variables are allocated per non-deterministic CPT entry.
  std::vector<std::vector<Var>> param_var(net.num_vars());
  for (BnVar v = 0; v < net.num_vars(); ++v) {
    param_var[v].assign(net.cpt(v).size(), kInvalidVar);
    for (size_t i = 0; i < net.cpt(v).size(); ++i) {
      if (!deterministic(net.cpt(v)[i])) param_var[v][i] = next++;
    }
  }
  cnf_.EnsureVars(next);
  weights_ = WeightMap(next);

  // Exactly-one clauses over each variable's indicators.
  for (BnVar v = 0; v < net.num_vars(); ++v) {
    Clause at_least;
    for (uint32_t x = 0; x < net.cardinality(v); ++x) {
      at_least.push_back(Pos(IndicatorVar(v, static_cast<int>(x))));
    }
    cnf_.AddClause(at_least);
    for (uint32_t x = 0; x < net.cardinality(v); ++x) {
      for (uint32_t y = x + 1; y < net.cardinality(v); ++y) {
        cnf_.AddClause({Neg(IndicatorVar(v, static_cast<int>(x))),
                        Neg(IndicatorVar(v, static_cast<int>(y)))});
      }
    }
  }

  // Parameter clauses: λ_u ∧ λ_x  ⇔  P. Enumerate CPT rows via a
  // mixed-radix counter over the parents.
  for (BnVar v = 0; v < net.num_vars(); ++v) {
    const auto& parents = net.parents(v);
    size_t rows = 1;
    for (BnVar p : parents) rows *= net.cardinality(p);
    for (size_t row = 0; row < rows; ++row) {
      // Decode the row into parent values (last parent fastest).
      std::vector<int> pvals(parents.size());
      size_t rest = row;
      for (size_t k = parents.size(); k-- > 0;) {
        pvals[k] = static_cast<int>(rest % net.cardinality(parents[k]));
        rest /= net.cardinality(parents[k]);
      }
      for (uint32_t x = 0; x < net.cardinality(v); ++x) {
        const size_t entry = row * net.cardinality(v) + x;
        const double theta = net.cpt(v)[entry];
        const Var p_var = param_var[v][entry];
        if (p_var == kInvalidVar) {
          // Deterministic entry (refined reduction): θ = 1 contributes a
          // weight of 1 and needs nothing; θ = 0 forbids the instantiation.
          if (theta < 0.5) {
            Clause forbid;
            for (size_t k = 0; k < parents.size(); ++k) {
              forbid.push_back(Neg(IndicatorVar(parents[k], pvals[k])));
            }
            forbid.push_back(Neg(IndicatorVar(v, static_cast<int>(x))));
            cnf_.AddClause(forbid);
          }
          continue;
        }
        weights_.Set(Pos(p_var), theta);
        // (λ_u1 ∧ ... ∧ λ_x) -> P.
        Clause imp{Pos(p_var)};
        for (size_t k = 0; k < parents.size(); ++k) {
          imp.push_back(Neg(IndicatorVar(parents[k], pvals[k])));
        }
        imp.push_back(Neg(IndicatorVar(v, static_cast<int>(x))));
        cnf_.AddClause(imp);
        // P -> each conjunct.
        for (size_t k = 0; k < parents.size(); ++k) {
          cnf_.AddClause({Neg(p_var), Pos(IndicatorVar(parents[k], pvals[k]))});
        }
        cnf_.AddClause({Neg(p_var), Pos(IndicatorVar(v, static_cast<int>(x)))});
      }
    }
  }
}

std::vector<Var> WmcEncoding::IndicatorVars(BnVar v) const {
  std::vector<Var> out;
  for (uint32_t x = 0; x < net_.cardinality(v); ++x) {
    out.push_back(IndicatorVar(v, static_cast<int>(x)));
  }
  return out;
}

WeightMap WmcEncoding::WeightsWithEvidence(const BnInstantiation& evidence) const {
  WeightMap w = weights_;
  for (BnVar v = 0; v < net_.num_vars() && v < evidence.size(); ++v) {
    if (evidence[v] == kUnobserved) continue;
    for (uint32_t x = 0; x < net_.cardinality(v); ++x) {
      if (static_cast<int>(x) != evidence[v]) {
        w.Set(Pos(IndicatorVar(v, static_cast<int>(x))), 0.0);
      }
    }
  }
  return w;
}

BnInstantiation WmcEncoding::DecodeModel(const Assignment& model) const {
  BnInstantiation inst(net_.num_vars(), kUnobserved);
  for (BnVar v = 0; v < net_.num_vars(); ++v) {
    for (uint32_t x = 0; x < net_.cardinality(v); ++x) {
      if (model[IndicatorVar(v, static_cast<int>(x))]) {
        TBC_DCHECK(inst[v] == kUnobserved);
        inst[v] = static_cast<int>(x);
      }
    }
  }
  return inst;
}

}  // namespace tbc
