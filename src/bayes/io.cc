#include "bayes/io.h"

#include <cstdio>

#include "base/strings.h"

namespace tbc {

std::string WriteNetwork(const BayesianNetwork& net) {
  std::string out = "net " + std::to_string(net.num_vars()) + "\n";
  char buffer[64];
  for (BnVar v = 0; v < net.num_vars(); ++v) {
    out += "var " + net.name(v) + " " + std::to_string(net.cardinality(v)) +
           " " + std::to_string(net.parents(v).size());
    for (BnVar p : net.parents(v)) out += " " + std::to_string(p);
    out += "\ncpt " + std::to_string(v);
    for (double theta : net.cpt(v)) {
      std::snprintf(buffer, sizeof(buffer), " %.17g", theta);
      out += buffer;
    }
    out += "\n";
  }
  return out;
}

namespace {

Status BadLine(size_t line_no, const std::string& what) {
  return Status::InvalidInput("line " + std::to_string(line_no) + ": " + what);
}

}  // namespace

Result<BayesianNetwork> ParseNetwork(const std::string& text) {
  BayesianNetwork net;
  // Pending declaration awaiting its CPT.
  std::string pending_name;
  uint32_t pending_card = 0;
  std::vector<BnVar> pending_parents;
  bool have_pending = false;
  bool saw_header = false;

  size_t line_no = 0;
  for (const std::string& raw : SplitChar(text, '\n')) {
    ++line_no;
    std::string_view line = StripWhitespace(raw);
    if (line.empty() || line[0] == '#') continue;
    const std::vector<std::string> tok = SplitWhitespace(line);
    if (tok[0] == "net") {
      saw_header = true;
    } else if (tok[0] == "var") {
      if (!saw_header) return BadLine(line_no, "var before net header");
      if (have_pending) {
        return BadLine(line_no, "var without cpt: " + pending_name);
      }
      if (tok.size() < 4) return BadLine(line_no, "bad var line: " + raw);
      pending_name = tok[1];
      uint64_t card = 0;
      if (!ParseUint64(tok[2], &card) || card < 2 || card > (1u << 20)) {
        return BadLine(line_no, "bad cardinality '" + tok[2] + "'");
      }
      pending_card = static_cast<uint32_t>(card);
      uint64_t num_parents = 0;
      if (!ParseUint64(tok[3], &num_parents)) {
        return BadLine(line_no, "bad parent count '" + tok[3] + "'");
      }
      if (tok.size() != 4 + num_parents) {
        return BadLine(line_no, "parent list does not match declared count: " +
                                    raw);
      }
      pending_parents.clear();
      for (size_t i = 0; i < num_parents; ++i) {
        uint64_t p = 0;
        if (!ParseUint64(tok[4 + i], &p)) {
          return BadLine(line_no, "bad parent index '" + tok[4 + i] + "'");
        }
        if (p >= net.num_vars()) {
          return BadLine(line_no, "parent " + std::to_string(p) +
                                      " not declared before child");
        }
        pending_parents.push_back(static_cast<BnVar>(p));
      }
      have_pending = true;
    } else if (tok[0] == "cpt") {
      if (!have_pending) return BadLine(line_no, "cpt without var: " + raw);
      uint64_t rows = 1;
      for (BnVar p : pending_parents) {
        rows *= net.cardinality(p);
        if (rows > (1u << 24)) {
          return BadLine(line_no, "cpt too large (parent state space > 2^24)");
        }
      }
      const size_t expected = rows * pending_card + 2;
      if (tok.size() != expected) {
        return BadLine(line_no, "cpt size mismatch: expected " +
                                    std::to_string(expected - 2) +
                                    " entries, got " +
                                    std::to_string(tok.size() - 2));
      }
      std::vector<double> cpt;
      for (size_t i = 2; i < tok.size(); ++i) {
        double theta = 0.0;
        if (!ParseDouble(tok[i], &theta) || theta < 0.0 || theta > 1.0) {
          return BadLine(line_no, "bad probability '" + tok[i] + "'");
        }
        cpt.push_back(theta);
      }
      // Validate rows sum to ~1 before handing to the aborting builder.
      for (size_t r = 0; r < rows; ++r) {
        double sum = 0.0;
        for (uint32_t k = 0; k < pending_card; ++k) sum += cpt[r * pending_card + k];
        if (sum < 1.0 - 1e-6 || sum > 1.0 + 1e-6) {
          return BadLine(line_no, "cpt row " + std::to_string(r) +
                                      " does not sum to 1");
        }
      }
      net.AddVariable(pending_name, pending_card, pending_parents, std::move(cpt));
      have_pending = false;
    } else {
      return BadLine(line_no, "unknown line: " + raw);
    }
  }
  if (!saw_header) return Status::InvalidInput("missing net header");
  if (have_pending) {
    return Status::InvalidInput("var without cpt: " + pending_name);
  }
  if (net.num_vars() == 0) return Status::InvalidInput("empty network");
  return net;
}

}  // namespace tbc
