#include "bayes/io.h"

#include <cstdio>

#include "base/strings.h"

namespace tbc {

std::string WriteNetwork(const BayesianNetwork& net) {
  std::string out = "net " + std::to_string(net.num_vars()) + "\n";
  char buffer[64];
  for (BnVar v = 0; v < net.num_vars(); ++v) {
    out += "var " + net.name(v) + " " + std::to_string(net.cardinality(v)) +
           " " + std::to_string(net.parents(v).size());
    for (BnVar p : net.parents(v)) out += " " + std::to_string(p);
    out += "\ncpt " + std::to_string(v);
    for (double theta : net.cpt(v)) {
      std::snprintf(buffer, sizeof(buffer), " %.17g", theta);
      out += buffer;
    }
    out += "\n";
  }
  return out;
}

Result<BayesianNetwork> ParseNetwork(const std::string& text) {
  BayesianNetwork net;
  // Pending declaration awaiting its CPT.
  std::string pending_name;
  uint32_t pending_card = 0;
  std::vector<BnVar> pending_parents;
  bool have_pending = false;
  bool saw_header = false;

  for (const std::string& raw : SplitChar(text, '\n')) {
    std::string_view line = StripWhitespace(raw);
    if (line.empty() || line[0] == '#') continue;
    const std::vector<std::string> tok = SplitWhitespace(line);
    if (tok[0] == "net") {
      saw_header = true;
    } else if (tok[0] == "var") {
      if (!saw_header) return Status::Error("missing net header");
      if (have_pending) return Status::Error("var without cpt: " + pending_name);
      if (tok.size() < 4) return Status::Error("bad var line: " + raw);
      pending_name = tok[1];
      pending_card = static_cast<uint32_t>(std::stoul(tok[2]));
      const size_t num_parents = std::stoul(tok[3]);
      if (tok.size() != 4 + num_parents) {
        return Status::Error("bad parent list: " + raw);
      }
      pending_parents.clear();
      for (size_t i = 0; i < num_parents; ++i) {
        const BnVar p = static_cast<BnVar>(std::stoul(tok[4 + i]));
        if (p >= net.num_vars()) {
          return Status::Error("parent declared after child: " + raw);
        }
        pending_parents.push_back(p);
      }
      have_pending = true;
    } else if (tok[0] == "cpt") {
      if (!have_pending) return Status::Error("cpt without var: " + raw);
      size_t rows = 1;
      for (BnVar p : pending_parents) rows *= net.cardinality(p);
      const size_t expected = rows * pending_card + 2;
      if (tok.size() != expected) {
        return Status::Error("cpt size mismatch: " + raw);
      }
      std::vector<double> cpt;
      for (size_t i = 2; i < tok.size(); ++i) cpt.push_back(std::stod(tok[i]));
      // Validate rows sum to ~1 before handing to the aborting builder.
      for (size_t r = 0; r < rows; ++r) {
        double sum = 0.0;
        for (uint32_t k = 0; k < pending_card; ++k) sum += cpt[r * pending_card + k];
        if (sum < 1.0 - 1e-6 || sum > 1.0 + 1e-6) {
          return Status::Error("cpt row does not sum to 1: " + raw);
        }
      }
      net.AddVariable(pending_name, pending_card, pending_parents, std::move(cpt));
      have_pending = false;
    } else {
      return Status::Error("unknown line: " + raw);
    }
  }
  if (!saw_header) return Status::Error("missing net header");
  if (have_pending) return Status::Error("var without cpt: " + pending_name);
  if (net.num_vars() == 0) return Status::Error("empty network");
  return net;
}

}  // namespace tbc
