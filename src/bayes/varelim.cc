#include "bayes/varelim.h"

#include <algorithm>

#include "base/check.h"

namespace tbc {

namespace {

// Table size of Multiply(a, b) — the union scope's state space — computed
// before the multiplication so budgets refuse before the blow-up, not after.
uint64_t ProductTableSize(const Factor& a, const Factor& b,
                          const BayesianNetwork& net) {
  uint64_t size = 1;
  std::vector<BnVar> scope = a.vars();
  for (BnVar v : b.vars()) {
    if (std::find(scope.begin(), scope.end(), v) == scope.end()) {
      scope.push_back(v);
    }
  }
  for (BnVar v : scope) size *= net.cardinality(v);
  return size;
}

}  // namespace

Factor VariableElimination::Eliminate(const BnInstantiation& evidence,
                                      const std::vector<BnVar>& keep,
                                      bool maximize_rest) const {
  return EliminateBounded(evidence, keep, maximize_rest, Guard::Unlimited())
      .value();
}

Result<Factor> VariableElimination::EliminateBounded(
    const BnInstantiation& evidence, const std::vector<BnVar>& keep,
    bool maximize_rest, Guard& guard) const {
  std::vector<Factor> factors;
  factors.reserve(net_.num_vars());
  for (BnVar v = 0; v < net_.num_vars(); ++v) {
    Factor f = Factor::FromCpt(net_, v);
    const std::vector<BnVar> scope = f.vars();  // copy: f is reassigned below
    for (BnVar u : scope) {
      if (u < evidence.size() && evidence[u] != kUnobserved) {
        f = f.Restrict(u, evidence[u]);
      }
    }
    factors.push_back(std::move(f));
  }
  auto kept = [&](BnVar v) {
    return std::find(keep.begin(), keep.end(), v) != keep.end();
  };
  for (BnVar v = 0; v < net_.num_vars(); ++v) {
    if (kept(v)) continue;
    TBC_RETURN_IF_ERROR(guard.Check());
    // Multiply all factors mentioning v, then eliminate v.
    Factor product({}, {});
    bool found = false;
    std::vector<Factor> rest;
    for (Factor& f : factors) {
      const bool mentions =
          std::find(f.vars().begin(), f.vars().end(), v) != f.vars().end();
      if (mentions) {
        if (found) {
          TBC_RETURN_IF_ERROR(
              guard.ChargeNodes(ProductTableSize(product, f, net_)));
          product = Factor::Multiply(product, f);
        } else {
          product = std::move(f);
        }
        found = true;
      } else {
        rest.push_back(std::move(f));
      }
    }
    if (found) {
      rest.push_back(maximize_rest ? product.MaxOut(v) : product.SumOut(v));
    }
    factors = std::move(rest);
  }
  Factor result({}, {});
  for (const Factor& f : factors) {
    TBC_RETURN_IF_ERROR(guard.ChargeNodes(ProductTableSize(result, f, net_)));
    result = Factor::Multiply(result, f);
  }
  return result;
}

double VariableElimination::ProbEvidence(const BnInstantiation& evidence) const {
  return Eliminate(evidence, {}, /*maximize_rest=*/false).Total();
}

double VariableElimination::Marginal(BnVar v, int value,
                                     const BnInstantiation& evidence) const {
  Factor f = Eliminate(evidence, {v}, /*maximize_rest=*/false);
  // If v itself carries evidence, the factor is already restricted.
  BnInstantiation inst(net_.num_vars(), kUnobserved);
  inst[v] = value;
  return f.At(inst);
}

double VariableElimination::Posterior(BnVar v, int value,
                                      const BnInstantiation& evidence) const {
  const double pe = ProbEvidence(evidence);
  TBC_CHECK_MSG(pe > 0.0, "zero-probability evidence");
  return Marginal(v, value, evidence) / pe;
}

Result<double> VariableElimination::ProbEvidenceBounded(
    const BnInstantiation& evidence, Guard& guard) const {
  TBC_ASSIGN_OR_RETURN(Factor f, EliminateBounded(evidence, {},
                                                  /*maximize_rest=*/false,
                                                  guard));
  return f.Total();
}

Result<double> VariableElimination::MarginalBounded(
    BnVar v, int value, const BnInstantiation& evidence, Guard& guard) const {
  if (v >= net_.num_vars()) {
    return Status::InvalidInput("variable " + std::to_string(v) +
                                " out of range");
  }
  if (value < 0 || value >= static_cast<int>(net_.cardinality(v))) {
    return Status::InvalidInput("value " + std::to_string(value) +
                                " out of range for variable " +
                                std::to_string(v));
  }
  TBC_ASSIGN_OR_RETURN(Factor f, EliminateBounded(evidence, {v},
                                                  /*maximize_rest=*/false,
                                                  guard));
  BnInstantiation inst(net_.num_vars(), kUnobserved);
  inst[v] = value;
  return f.At(inst);
}

Result<double> VariableElimination::PosteriorBounded(
    BnVar v, int value, const BnInstantiation& evidence, Guard& guard) const {
  TBC_ASSIGN_OR_RETURN(const double pe, ProbEvidenceBounded(evidence, guard));
  if (pe <= 0.0) return Status::InvalidInput("zero-probability evidence");
  TBC_ASSIGN_OR_RETURN(const double marginal,
                       MarginalBounded(v, value, evidence, guard));
  return marginal / pe;
}

double VariableElimination::MpeValue(const BnInstantiation& evidence) const {
  return Eliminate(evidence, {}, /*maximize_rest=*/true).Max();
}

BnInstantiation VariableElimination::Mpe(const BnInstantiation& evidence) const {
  BnInstantiation current = evidence;
  current.resize(net_.num_vars(), kUnobserved);
  for (BnVar v = 0; v < net_.num_vars(); ++v) {
    if (current[v] != kUnobserved) continue;
    double best = -1.0;
    int best_value = 0;
    for (int x = 0; x < static_cast<int>(net_.cardinality(v)); ++x) {
      current[v] = x;
      const double val = MpeValue(current);
      if (val > best) {
        best = val;
        best_value = x;
      }
    }
    current[v] = best_value;
  }
  return current;
}

double VariableElimination::Map(const std::vector<BnVar>& map_vars,
                                const BnInstantiation& evidence,
                                std::vector<int>* argmax) const {
  // Sum out everything outside map_vars, then maximize the joint factor.
  Factor f = Eliminate(evidence, map_vars, /*maximize_rest=*/false);
  double best = -1.0;
  size_t best_index = 0;
  for (size_t i = 0; i < f.table_size(); ++i) {
    if (f.value(i) > best) {
      best = f.value(i);
      best_index = i;
    }
  }
  if (argmax != nullptr) {
    // Factor scope order may differ from map_vars order; remap.
    const std::vector<int> vals = f.Decode(best_index);
    argmax->assign(map_vars.size(), 0);
    for (size_t k = 0; k < map_vars.size(); ++k) {
      for (size_t j = 0; j < f.vars().size(); ++j) {
        if (f.vars()[j] == map_vars[k]) (*argmax)[k] = vals[j];
      }
    }
  }
  return best;
}

double VariableElimination::Sdp(BnVar decision_var, int d_value,
                                double threshold,
                                const std::vector<BnVar>& observables,
                                const BnInstantiation& evidence) const {
  const double pe = ProbEvidence(evidence);
  TBC_CHECK_MSG(pe > 0.0, "zero-probability evidence");
  const bool current_decision =
      Marginal(decision_var, d_value, evidence) / pe >= threshold;

  // Enumerate instantiations y of the observables.
  uint64_t num_y = 1;
  for (BnVar v : observables) num_y *= net_.cardinality(v);
  double sdp = 0.0;
  for (uint64_t code = 0; code < num_y; ++code) {
    BnInstantiation with_y = evidence;
    with_y.resize(net_.num_vars(), kUnobserved);
    uint64_t rest = code;
    for (size_t k = observables.size(); k-- > 0;) {
      with_y[observables[k]] = static_cast<int>(rest % net_.cardinality(observables[k]));
      rest /= net_.cardinality(observables[k]);
    }
    const double pye = ProbEvidence(with_y);
    if (pye <= 0.0) continue;
    const bool decision =
        Marginal(decision_var, d_value, with_y) / pye >= threshold;
    if (decision == current_decision) sdp += pye / pe;
  }
  return sdp;
}

}  // namespace tbc
