#ifndef TBC_BAYES_IO_H_
#define TBC_BAYES_IO_H_

#include <string>

#include "base/result.h"
#include "bayes/network.h"

namespace tbc {

/// Serializes a Bayesian network in a simple line-oriented text format:
///   net <num_vars>
///   var <name> <cardinality> <num_parents> <parent_index...>
///   cpt <var_index> <row_major_values...>
/// Variables appear in topological (declaration) order; CPT rows follow
/// the layout of BayesianNetwork::AddVariable.
std::string WriteNetwork(const BayesianNetwork& net);

/// Parses the format above (comments start with '#').
Result<BayesianNetwork> ParseNetwork(const std::string& text);

}  // namespace tbc

#endif  // TBC_BAYES_IO_H_
