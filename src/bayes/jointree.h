#ifndef TBC_BAYES_JOINTREE_H_
#define TBC_BAYES_JOINTREE_H_

#include <vector>

#include "bayes/factor.h"
#include "bayes/network.h"

namespace tbc {

/// Jointree (junction/clique tree) inference — the other classical
/// dedicated BN algorithm the paper's "long tradition of dedicated
/// algorithms" refers to ([Darwiche 2009, Ch. 6-7]). Structure is built
/// once (moralize → min-fill triangulation → maximum-spanning clique
/// tree); each query calibrates the tree with two message-passing sweeps.
/// Serves, with variable elimination, as an independent baseline for the
/// circuit pipeline.
class Jointree {
 public:
  explicit Jointree(const BayesianNetwork& net);

  size_t num_cliques() const { return cliques_.size(); }
  /// Largest clique cardinality (treewidth + 1 under the found order).
  size_t max_clique_size() const;

  /// Pr(evidence).
  double ProbEvidence(const BnInstantiation& evidence) const;

  /// Unnormalized marginal Pr(v = value, evidence).
  double Marginal(BnVar v, int value, const BnInstantiation& evidence) const;

  /// All marginals Pr(v = x, evidence) from ONE calibration (the jointree
  /// counterpart of the circuit differential pass); result[v][x].
  std::vector<std::vector<double>> AllMarginals(
      const BnInstantiation& evidence) const;

 private:
  struct Edge {
    size_t neighbor;
    std::vector<BnVar> separator;
  };

  // Calibrated clique beliefs under the evidence.
  std::vector<Factor> Calibrate(const BnInstantiation& evidence) const;
  Factor InitialPotential(size_t clique, const BnInstantiation& evidence) const;
  Factor MessageTo(size_t from, size_t to, const BnInstantiation& evidence,
                   std::vector<std::vector<Factor>>& messages,
                   std::vector<std::vector<int8_t>>& ready) const;

  const BayesianNetwork& net_;
  std::vector<std::vector<BnVar>> cliques_;
  std::vector<std::vector<Edge>> tree_;            // adjacency with separators
  std::vector<std::vector<BnVar>> cpt_assignment_; // clique -> owned CPT vars
  std::vector<size_t> home_clique_;                // var -> a clique containing it
};

}  // namespace tbc

#endif  // TBC_BAYES_JOINTREE_H_
