#ifndef TBC_BAYES_NETWORK_H_
#define TBC_BAYES_NETWORK_H_

#include <cstdint>
#include <string>
#include <vector>

#include "base/random.h"
#include "base/result.h"

namespace tbc {

/// Index of a network variable.
using BnVar = uint32_t;

/// A full or partial instantiation of network variables: value index per
/// variable, or kUnobserved.
constexpr int kUnobserved = -1;
using BnInstantiation = std::vector<int>;

/// A discrete Bayesian network (paper §2, Figs 2 and 4).
///
/// A directed acyclic graph over discrete variables; each variable carries
/// one conditional distribution per instantiation of its parents. The
/// network induces the unique joint distribution
///   Pr(x) = Π_X θ_{x | u}   (product of the compatible CPT entries),
/// the factorization illustrated in Fig 4. Variables may have any
/// cardinality; parents must be added before children (so variable order
/// is topological by construction).
class BayesianNetwork {
 public:
  /// Adds a variable with the given parents and CPT and returns its index.
  /// `cpt` is laid out row-major: for each parent instantiation (mixed-radix
  /// counter over `parents` in the given order, last parent fastest), the
  /// distribution over this variable's `cardinality` values. Each row must
  /// sum to ~1. Aborts on malformed input (sizes, non-topological parents).
  BnVar AddVariable(std::string name, uint32_t cardinality,
                    std::vector<BnVar> parents, std::vector<double> cpt);

  /// Convenience for binary variables: `cpt_true[j]` = Pr(var=1 | j-th
  /// parent instantiation).
  BnVar AddBinary(std::string name, std::vector<BnVar> parents,
                  std::vector<double> cpt_true);

  size_t num_vars() const { return cards_.size(); }
  uint32_t cardinality(BnVar v) const { return cards_[v]; }
  const std::string& name(BnVar v) const { return names_[v]; }
  const std::vector<BnVar>& parents(BnVar v) const { return parents_[v]; }
  const std::vector<double>& cpt(BnVar v) const { return cpts_[v]; }

  /// Index of variable by name; aborts if absent.
  BnVar VarByName(const std::string& name) const;

  /// The CPT entry θ_{v=value | parent values taken from inst}.
  double Theta(BnVar v, const BnInstantiation& inst, int value) const;

  /// Joint probability Pr(inst) of a complete instantiation.
  double JointProbability(const BnInstantiation& inst) const;

  /// Number of complete instantiations (Π cardinalities); aborts if > 2^40.
  uint64_t NumInstantiations() const;
  /// Decodes the i-th complete instantiation (mixed-radix, var 0 slowest).
  BnInstantiation InstantiationAt(uint64_t index) const;

  /// Brute-force marginal Pr(v = value, evidence) (test oracle).
  double MarginalBruteForce(BnVar v, int value,
                            const BnInstantiation& evidence) const;

  /// Forward (ancestral) sampling: draws a complete instantiation from the
  /// joint distribution (variables are topologically ordered by
  /// construction, so one left-to-right pass suffices).
  BnInstantiation Sample(Rng& rng) const;

  /// Random binary network: each variable picks up to `max_parents`
  /// parents among its predecessors; CPT entries uniform in (0.05, 0.95).
  static BayesianNetwork RandomBinary(size_t num_vars, size_t max_parents,
                                      uint64_t seed);

 private:
  size_t ParentConfigIndex(BnVar v, const BnInstantiation& inst) const;

  std::vector<std::string> names_;
  std::vector<uint32_t> cards_;
  std::vector<std::vector<BnVar>> parents_;
  std::vector<std::vector<double>> cpts_;
};

}  // namespace tbc

#endif  // TBC_BAYES_NETWORK_H_
