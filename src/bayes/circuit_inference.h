#ifndef TBC_BAYES_CIRCUIT_INFERENCE_H_
#define TBC_BAYES_CIRCUIT_INFERENCE_H_

#include <memory>
#include <vector>

#include "base/guard.h"
#include "base/result.h"
#include "base/thread_pool.h"
#include "bayes/network.h"
#include "bayes/wmc_encoding.h"
#include "nnf/nnf.h"

namespace tbc {

/// Circuit-based Bayesian network inference: the reduction pipeline the
/// paper's first role is about (§2-§3). The network is encoded to CNF
/// [Darwiche 2002], compiled once into a Decision-DNNF, and all four
/// queries run as polytime passes on the compiled circuit:
///   MAR (PP)     — weighted model count with evidence-adjusted weights;
///   all-marginals — one up+down differential pass [Darwiche 2003];
///   MPE (NP)     — maximizer pass with traceback;
///   MAP (NP^PP)  — constrained-vtree SDD + max-sum pass
///                  [Oztok, Choi & Darwiche 2016];
///   SDP (PP^PP)  — expectation over observable instantiations, each a
///                  linear WMC pass on the same compiled circuit.
class CompiledBayesNet {
 public:
  explicit CompiledBayesNet(const BayesianNetwork& net);

  /// Resource-governed construction: the one-time Decision-DNNF compile —
  /// the only potentially exponential step of the pipeline — runs under
  /// `guard`; a deadline/budget trip returns the guard's typed status
  /// instead of compiling without bound.
  static Result<CompiledBayesNet> CompileBounded(const BayesianNetwork& net,
                                                 Guard& guard);

  /// Pr(evidence).
  double ProbEvidence(const BnInstantiation& evidence);

  /// Pr(evidence) for a batch of instantiations (multi-evidence MAR, the
  /// inner loop of SDP-style sweeps). The compiled circuit is shared and
  /// read-only during the batch (its var-set cache is warmed up front), so
  /// with a pool of >1 threads the instantiations evaluate concurrently;
  /// each output is produced by exactly one lane, making the vector
  /// bit-identical across thread counts. Refuses when `guard` trips.
  Result<std::vector<double>> ProbEvidenceBatch(
      const std::vector<BnInstantiation>& evidence, Guard& guard,
      ThreadPool* pool = nullptr);

  /// Unnormalized marginal Pr(v = value, evidence).
  double Marginal(BnVar v, int value, const BnInstantiation& evidence);

  /// Pr(v = value | evidence); aborts if Pr(evidence) == 0.
  double Posterior(BnVar v, int value, const BnInstantiation& evidence);

  /// Fallible variant: kInvalidInput (not an abort) when the evidence has
  /// zero probability or contradicts v = value.
  Result<double> PosteriorChecked(BnVar v, int value,
                                  const BnInstantiation& evidence);

  /// All marginals Pr(v = x, evidence) in one differential pass;
  /// result[v][x].
  std::vector<std::vector<double>> AllMarginals(const BnInstantiation& evidence);

  struct MpeOutcome {
    double probability = 0.0;  // Pr(x, e) of the maximizer
    BnInstantiation instantiation;
  };
  /// Most probable explanation completing the evidence.
  MpeOutcome Mpe(const BnInstantiation& evidence);

  struct MapOutcome {
    double probability = 0.0;  // max_y Pr(y, e)
    std::vector<int> values;   // parallel to map_vars
  };
  /// MAP over `map_vars`: compiles a second circuit over a vtree
  /// constrained for the split (rest | map indicators), then one max-sum
  /// pass. Exact.
  MapOutcome Map(const std::vector<BnVar>& map_vars,
                 const BnInstantiation& evidence);

  /// Same-decision probability of [Pr(decision_var=d_value|e) >= threshold]
  /// under future observation of `observables`. Exponential in
  /// |observables| with a linear circuit pass per instantiation (compile
  /// once, query many); the fully polytime-per-node constrained algorithm
  /// of [Oztok et al. 2016] is future work recorded in DESIGN.md.
  double Sdp(BnVar decision_var, int d_value, double threshold,
             const std::vector<BnVar>& observables,
             const BnInstantiation& evidence);

  /// Size (edges) of the compiled Decision-DNNF.
  size_t CircuitSize() const;
  const WmcEncoding& encoding() const { return encoding_; }

 private:
  // Builds the encoding but defers circuit compilation (CompileBounded
  // runs it under a guard and fills root_ itself).
  struct DeferCompileTag {};
  CompiledBayesNet(const BayesianNetwork& net, DeferCompileTag);

  const BayesianNetwork& net_;
  WmcEncoding encoding_;
  NnfManager mgr_;
  NnfId root_;
};

}  // namespace tbc

#endif  // TBC_BAYES_CIRCUIT_INFERENCE_H_
