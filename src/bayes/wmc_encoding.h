#ifndef TBC_BAYES_WMC_ENCODING_H_
#define TBC_BAYES_WMC_ENCODING_H_

#include <vector>

#include "bayes/network.h"
#include "logic/cnf.h"

namespace tbc {

/// The core MAR -> WMC reduction [Darwiche 2002] (paper §2.2, Fig 4).
///
/// For each network variable X and value x there is a Boolean *indicator*
/// variable λ_{X=x} (exactly-one per network variable), and for each CPT
/// entry θ_{x|u} a Boolean *parameter* variable P_{x|u} with the clauses of
///   λ_{u1} ∧ ... ∧ λ_{uk} ∧ λ_x  ⇔  P_{x|u}.
/// The resulting CNF Δ has exactly one model per network instantiation
/// (display (1) in the paper), and with weights
///   W(λ) = W(¬λ) = W(¬P) = 1,  W(P_{x|u}) = θ_{x|u}
/// the weight of that model is the instantiation's probability. Hence
/// Pr(α) = WMC(Δ ∧ α) for any event α over the indicators, and evidence is
/// asserted by zeroing the weights of contradicted indicators.
class WmcEncoding {
 public:
  struct Options {
    /// The refined reduction of §2.2's closing discussion ([Chavira &
    /// Darwiche 2008]): deterministic CPT entries get no parameter
    /// variable at all — θ = 0 becomes a hard clause forbidding the
    /// instantiation, θ = 1 disappears entirely. "Can be critical for the
    /// efficient computation of weighted model counts" when the network
    /// has an abundance of 0/1 parameters; bench_ablation_encodings
    /// quantifies it.
    bool exploit_determinism = false;
  };

  /// Builds the encoding of `net` (classic reduction).
  explicit WmcEncoding(const BayesianNetwork& net) : WmcEncoding(net, Options()) {}
  WmcEncoding(const BayesianNetwork& net, Options options);

  const Cnf& cnf() const { return cnf_; }
  /// Weights with no evidence.
  const WeightMap& weights() const { return weights_; }
  size_t num_bool_vars() const { return cnf_.num_vars(); }

  /// Boolean indicator variable for network variable v taking `value`.
  Var IndicatorVar(BnVar v, int value) const {
    return indicator_base_[v] + static_cast<Var>(value);
  }
  /// All indicator variables of network variable v.
  std::vector<Var> IndicatorVars(BnVar v) const;

  /// Weights with evidence asserted (contradicted indicators get weight 0).
  WeightMap WeightsWithEvidence(const BnInstantiation& evidence) const;

  /// Decodes a Boolean model of the encoding into a network instantiation.
  BnInstantiation DecodeModel(const Assignment& model) const;

 private:
  const BayesianNetwork& net_;
  Cnf cnf_;
  WeightMap weights_{0};
  std::vector<Var> indicator_base_;  // per network variable
};

}  // namespace tbc

#endif  // TBC_BAYES_WMC_ENCODING_H_
