#ifndef TBC_OBDD_OBDD_H_
#define TBC_OBDD_OBDD_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "base/bigint.h"
#include "base/flat_table.h"
#include "base/hash.h"
#include "certify/trace.h"
#include "logic/cnf.h"
#include "logic/formula.h"
#include "logic/lit.h"
#include "nnf/nnf.h"

namespace tbc {

/// Node index within an ObddManager. 0 and 1 are the terminals.
using ObddId = uint32_t;

/// Ordered Binary Decision Diagram package [Bryant 1986].
///
/// OBDDs are the classic tractable circuit language the paper contrasts
/// with SDDs (Fig 11, Fig 25): an SDD over a right-linear vtree *is* an
/// OBDD, and every OBDD node is a binary multiplexer deciding on a single
/// variable. The package is reduced and ordered: nodes are hash-consed, so
/// two equivalent functions get the same node (canonicity), and every
/// root-to-terminal path respects the manager's variable order.
///
/// Supported operations: Apply (∧, ∨, ⊕), negation, restrict/condition,
/// existential and universal quantification, composition, exact model
/// counting and WMC, model enumeration, export to NNF (yielding a
/// Decision-DNNF), and compilation from CNF or formula ASTs.
class ObddManager {
 public:
  /// Manager over variables 0..order.size()-1 tested in the given order
  /// (order[0] is the root level).
  explicit ObddManager(std::vector<Var> order);

  ObddId False() const { return 0; }
  ObddId True() const { return 1; }
  /// The function of a single literal.
  ObddId LiteralNode(Lit l);
  /// Decision node: if v then hi else lo (v must precede hi/lo's levels).
  ObddId MakeNode(Var v, ObddId lo, ObddId hi);

  size_t num_vars() const { return order_.size(); }
  const std::vector<Var>& order() const { return order_; }
  /// Level (depth in the order) of a variable.
  uint32_t LevelOf(Var v) const { return level_of_var_[v]; }

  bool IsTerminal(ObddId f) const { return f <= 1; }
  Var var(ObddId f) const { return nodes_[f].var; }
  ObddId lo(ObddId f) const { return nodes_[f].lo; }
  ObddId hi(ObddId f) const { return nodes_[f].hi; }

  ObddId And(ObddId f, ObddId g);
  ObddId Or(ObddId f, ObddId g);
  ObddId Xor(ObddId f, ObddId g);
  ObddId Not(ObddId f);
  ObddId Implies(ObddId f, ObddId g) { return Or(Not(f), g); }
  ObddId Iff(ObddId f, ObddId g) { return Not(Xor(f, g)); }
  /// If-then-else.
  ObddId Ite(ObddId f, ObddId g, ObddId h);

  /// f with variable v fixed to `value`.
  ObddId Restrict(ObddId f, Var v, bool value);
  /// f conditioned on a literal.
  ObddId Condition(ObddId f, Lit l) { return Restrict(f, l.var(), l.positive()); }
  /// ∃v. f and ∀v. f.
  ObddId Exists(ObddId f, Var v);
  ObddId Forall(ObddId f, Var v);
  /// f with variable v substituted by the function g.
  ObddId Compose(ObddId f, Var v, ObddId g);

  /// Truth value under a complete assignment.
  bool Evaluate(ObddId f, const Assignment& assignment) const;
  /// Exact number of models over all manager variables.
  BigUint ModelCount(ObddId f);
  /// Weighted model count over all manager variables.
  double Wmc(ObddId f, const WeightMap& weights);
  /// Invokes on_model for every model over all manager variables
  /// (test/analysis oracle; exponential output).
  void EnumerateModels(ObddId f,
                       const std::function<void(const Assignment&)>& on_model);

  /// Nodes reachable from f (including terminals).
  size_t Size(ObddId f) const;
  /// Total nodes ever created in the manager.
  size_t num_nodes() const { return nodes_.size(); }

  /// Exports the subgraph at f as a Decision-DNNF circuit in `nnf`.
  NnfId ToNnf(ObddId f, NnfManager& nnf) const;

  /// Compiles a CNF by conjoining clause OBDDs.
  ObddId CompileCnf(const Cnf& cnf);
  /// Compiles a formula AST bottom-up.
  ObddId CompileFormula(const FormulaStore& store, FormulaId f);

  /// True iff f is monotone (non-decreasing) in variable v: f|¬v ⇒ f|v.
  bool IsMonotoneIn(ObddId f, Var v);

#if TBC_CERTIFY_TRACE_ON
  /// Attaches an apply-step sink (borrowed; nullptr detaches). While
  /// attached, every conjunction computed by Apply is recorded. Attaching
  /// clears the op cache, so conjunctions answered from the cache always
  /// have a recorded step behind them.
  void set_trace(ObddTraceSink* sink) {
    op_cache_.Clear();
    trace_ = sink;
  }

  /// CompileCnf that also fills `trace` with everything the certificate
  /// checker needs: order, node-table snapshot, apply steps, and the
  /// clause-conjunction chain ending at the returned root.
  ObddId CompileCnfTraced(const Cnf& cnf, ObddTrace* trace);
#endif

 private:
  struct Node {
    Var var;
    ObddId lo, hi;
  };
  enum class Op : uint8_t { kAnd, kOr, kXor, kNot };

  ObddId Apply(Op op, ObddId f, ObddId g);
  static bool TerminalCase(Op op, ObddId f, ObddId g, ObddId* out);
  // Reachable node ids in ascending (topological) order.
  std::vector<ObddId> ReachableAscending(ObddId f) const;

  // Exact cache key: packed operands plus an operation tag (collision-free,
  // unlike keying on a hash value).
  struct OpKey {
    uint64_t fg = 0;   // f | (g << 32)
    uint32_t tag = 0;  // operation id; Restrict encodes (var, value)
    bool operator==(const OpKey& o) const { return fg == o.fg && tag == o.tag; }
    // Found by ADL from LossyCache; full splitmix64 mix of both fields.
    friend uint64_t HashValue(const OpKey& k) {
      return HashU64(k.fg) ^ HashU64(static_cast<uint64_t>(k.tag) + 0x9e3779b97f4a7c15ull);
    }
  };

  std::vector<Var> order_;
  std::vector<uint32_t> level_of_var_;
  std::vector<Node> nodes_;
  UniqueTable unique_;
  LossyCache<OpKey, ObddId> op_cache_;
#if TBC_CERTIFY_TRACE_ON
  ObddTraceSink* trace_ = nullptr;
#endif
};

}  // namespace tbc

#endif  // TBC_OBDD_OBDD_H_
