#include "obdd/obdd.h"

#include <algorithm>

#include "base/check.h"
#include "base/hash.h"
#include "base/observability.h"

#ifdef TBC_CERTIFY
#include "certify/emit.h"
#endif

namespace tbc {

namespace {
constexpr uint32_t kTermLevel = static_cast<uint32_t>(-1);
}  // namespace

ObddManager::ObddManager(std::vector<Var> order) : order_(std::move(order)) {
  Var max_var = 0;
  for (Var v : order_) max_var = std::max(max_var, v);
  level_of_var_.assign(max_var + 1, kTermLevel);
  for (uint32_t i = 0; i < order_.size(); ++i) {
    TBC_CHECK_MSG(level_of_var_[order_[i]] == kTermLevel,
                  "variable appears twice in OBDD order");
    level_of_var_[order_[i]] = i;
  }
  // Terminals occupy ids 0 and 1 with a sentinel variable.
  nodes_.push_back({kInvalidVar, 0, 0});
  nodes_.push_back({kInvalidVar, 1, 1});
}

ObddId ObddManager::MakeNode(Var v, ObddId lo, ObddId hi) {
  if (lo == hi) return lo;  // node elimination (reduction rule)
  TBC_DCHECK(level_of_var_[v] != kTermLevel);
  TBC_DCHECK(IsTerminal(lo) || LevelOf(nodes_[lo].var) > LevelOf(v));
  TBC_DCHECK(IsTerminal(hi) || LevelOf(nodes_[hi].var) > LevelOf(v));
  const uint64_t key = HashU64(HashCombine(HashCombine(HashU64(v), lo), hi));
  const uint32_t found = unique_.Find(key, [&](uint32_t id) {
    const Node& n = nodes_[id];
    return n.var == v && n.lo == lo && n.hi == hi;
  });
  if (found != UniqueTable::kNpos) {
    TBC_COUNT("obdd.unique.hits");
    return found;
  }
  TBC_COUNT("obdd.nodes.created");
  const ObddId id = static_cast<ObddId>(nodes_.size());
  nodes_.push_back({v, lo, hi});
  unique_.Insert(key, id);
  return id;
}

ObddId ObddManager::LiteralNode(Lit l) {
  return l.positive() ? MakeNode(l.var(), False(), True())
                      : MakeNode(l.var(), True(), False());
}

bool ObddManager::TerminalCase(Op op, ObddId f, ObddId g, ObddId* out) {
  switch (op) {
    case Op::kAnd:
      if (f == 0 || g == 0) return *out = 0, true;
      if (f == 1) return *out = g, true;
      if (g == 1) return *out = f, true;
      if (f == g) return *out = f, true;
      return false;
    case Op::kOr:
      if (f == 1 || g == 1) return *out = 1, true;
      if (f == 0) return *out = g, true;
      if (g == 0) return *out = f, true;
      if (f == g) return *out = f, true;
      return false;
    case Op::kXor:
      if (f == g) return *out = 0, true;
      if (f == 0) return *out = g, true;
      if (g == 0) return *out = f, true;
      return false;
    default:
      return false;
  }
}

ObddId ObddManager::Apply(Op op, ObddId f, ObddId g) {
  ObddId out;
  if (TerminalCase(op, f, g, &out)) return out;
  // Xor with terminal 1 handled by recursion; normalize commutative args.
  if (f > g) std::swap(f, g);
  TBC_COUNT("obdd.apply.calls");
  const OpKey key{f | (static_cast<uint64_t>(g) << 32),
                  static_cast<uint32_t>(op)};
  if (const ObddId* hit = op_cache_.Find(key)) {
    TBC_COUNT("obdd.apply.cache_hits");
    return *hit;
  }
  TBC_COUNT("obdd.apply.cache_misses");

  const uint32_t lf = IsTerminal(f) ? kTermLevel : LevelOf(nodes_[f].var);
  const uint32_t lg = IsTerminal(g) ? kTermLevel : LevelOf(nodes_[g].var);
  const uint32_t top = std::min(lf, lg);
  const Var v = order_[top];
  const ObddId f0 = lf == top ? nodes_[f].lo : f;
  const ObddId f1 = lf == top ? nodes_[f].hi : f;
  const ObddId g0 = lg == top ? nodes_[g].lo : g;
  const ObddId g1 = lg == top ? nodes_[g].hi : g;
  const ObddId r = MakeNode(v, Apply(op, f0, g0), Apply(op, f1, g1));
  op_cache_.Insert(key, r);
#if TBC_CERTIFY_TRACE_ON
  // Record after the recursion so a step's operands always precede it in
  // the sink (the checker verifies steps in order). Only conjunctions are
  // certified; CompileCnf builds clause OBDDs literal-by-literal with Or,
  // and the checker derives those directly from the input clause instead.
  if (trace_ != nullptr && op == Op::kAnd) trace_->steps.push_back({f, g, r});
#endif
  return r;
}

ObddId ObddManager::And(ObddId f, ObddId g) { return Apply(Op::kAnd, f, g); }
ObddId ObddManager::Or(ObddId f, ObddId g) { return Apply(Op::kOr, f, g); }
ObddId ObddManager::Xor(ObddId f, ObddId g) { return Apply(Op::kXor, f, g); }

ObddId ObddManager::Not(ObddId f) {
  if (f == 0) return 1;
  if (f == 1) return 0;
  const OpKey key{f, static_cast<uint32_t>(Op::kNot)};
  if (const ObddId* hit = op_cache_.Find(key)) return *hit;
  const ObddId r = MakeNode(nodes_[f].var, Not(nodes_[f].lo), Not(nodes_[f].hi));
  op_cache_.Insert(key, r);
  return r;
}

ObddId ObddManager::Ite(ObddId f, ObddId g, ObddId h) {
  return Or(And(f, g), And(Not(f), h));
}

ObddId ObddManager::Restrict(ObddId f, Var v, bool value) {
  if (IsTerminal(f)) return f;
  const uint32_t lv = LevelOf(v);
  const uint32_t lf = LevelOf(nodes_[f].var);
  if (lf > lv) return f;  // v does not occur below f
  if (lf == lv) return value ? nodes_[f].hi : nodes_[f].lo;
  // Tags 0..3 are Ops; Restrict uses 4 + literal code.
  const OpKey key{f, 4u + 2u * v + (value ? 1u : 0u)};
  if (const ObddId* hit = op_cache_.Find(key)) return *hit;
  const ObddId r = MakeNode(nodes_[f].var, Restrict(nodes_[f].lo, v, value),
                            Restrict(nodes_[f].hi, v, value));
  op_cache_.Insert(key, r);
  return r;
}

ObddId ObddManager::Exists(ObddId f, Var v) {
  return Or(Restrict(f, v, false), Restrict(f, v, true));
}

ObddId ObddManager::Forall(ObddId f, Var v) {
  return And(Restrict(f, v, false), Restrict(f, v, true));
}

ObddId ObddManager::Compose(ObddId f, Var v, ObddId g) {
  return Ite(g, Restrict(f, v, true), Restrict(f, v, false));
}

bool ObddManager::Evaluate(ObddId f, const Assignment& assignment) const {
  while (!IsTerminal(f)) {
    const Node& n = nodes_[f];
    TBC_DCHECK(n.var < assignment.size());
    f = assignment[n.var] ? n.hi : n.lo;
  }
  return f == 1;
}

std::vector<ObddId> ObddManager::ReachableAscending(ObddId f) const {
  // lo/hi always reference previously created nodes, so ascending id order
  // is topological (children before parents).
  std::vector<uint8_t> seen(nodes_.size(), 0);
  std::vector<ObddId> order;
  std::vector<ObddId> stack = {f};
  seen[f] = 1;
  while (!stack.empty()) {
    const ObddId g = stack.back();
    stack.pop_back();
    order.push_back(g);
    if (IsTerminal(g)) continue;
    if (!seen[nodes_[g].lo]) {
      seen[nodes_[g].lo] = 1;
      stack.push_back(nodes_[g].lo);
    }
    if (!seen[nodes_[g].hi]) {
      seen[nodes_[g].hi] = 1;
      stack.push_back(nodes_[g].hi);
    }
  }
  std::sort(order.begin(), order.end());
  return order;
}

BigUint ObddManager::ModelCount(ObddId f) {
  // count[g] = models of g over the variables strictly below g's level;
  // combine with level gaps on the way up. One iterative dense pass in
  // ascending id order (children precede parents).
  const std::vector<ObddId> order = ReachableAscending(f);
  std::vector<BigUint> count(nodes_.size());
  const uint32_t num_levels = static_cast<uint32_t>(order_.size());
  auto level_of = [&](ObddId g) {
    return IsTerminal(g) ? num_levels : LevelOf(nodes_[g].var);
  };
  for (const ObddId g : order) {
    if (g == 0) continue;  // stays 0
    if (g == 1) {
      count[g] = BigUint(1);
      continue;
    }
    const Node& n = nodes_[g];
    const uint32_t lv = LevelOf(n.var);
    count[g] = count[n.lo] * BigUint::PowerOfTwo(level_of(n.lo) - lv - 1) +
               count[n.hi] * BigUint::PowerOfTwo(level_of(n.hi) - lv - 1);
  }
  return count[f] * BigUint::PowerOfTwo(level_of(f));
}

double ObddManager::Wmc(ObddId f, const WeightMap& weights) {
  // Free variables at skipped levels contribute (W(x)+W(¬x)).
  std::vector<double> free_factor(order_.size() + 1, 1.0);
  // free_factor[i] = product over levels >= i of (W+W); computed suffix-wise.
  for (size_t i = order_.size(); i-- > 0;) {
    const Var v = order_[i];
    free_factor[i] = free_factor[i + 1] * (weights[Pos(v)] + weights[Neg(v)]);
  }
  auto span_factor = [&](uint32_t from_level, uint32_t to_level) {
    // Product of (W+W) for levels in [from_level, to_level).
    return free_factor[to_level] == 0.0
               ? 0.0
               : free_factor[from_level] / free_factor[to_level];
  };
  // Guard against zero (W+W) factors making the suffix trick ill-defined:
  // fall back to explicit products if any pair sums to zero.
  bool any_zero = false;
  for (Var v : order_) {
    if (weights[Pos(v)] + weights[Neg(v)] == 0.0) any_zero = true;
  }
  std::function<double(uint32_t, uint32_t)> span_explicit =
      [&](uint32_t a, uint32_t b) {
        double r = 1.0;
        for (uint32_t i = a; i < b; ++i) {
          const Var v = order_[i];
          r *= weights[Pos(v)] + weights[Neg(v)];
        }
        return r;
      };
  auto span = [&](uint32_t a, uint32_t b) {
    return any_zero ? span_explicit(a, b) : span_factor(a, b);
  };

  const std::vector<ObddId> order = ReachableAscending(f);
  std::vector<double> value(nodes_.size(), 0.0);
  const uint32_t num_levels = static_cast<uint32_t>(order_.size());
  auto level_of = [&](ObddId g) {
    return IsTerminal(g) ? num_levels : LevelOf(nodes_[g].var);
  };
  for (const ObddId g : order) {
    if (g == 0) continue;  // stays 0
    if (g == 1) {
      value[g] = 1.0;
      continue;
    }
    const Node& n = nodes_[g];
    const uint32_t lv = LevelOf(n.var);
    value[g] =
        weights[Neg(n.var)] * value[n.lo] * span(lv + 1, level_of(n.lo)) +
        weights[Pos(n.var)] * value[n.hi] * span(lv + 1, level_of(n.hi));
  }
  return value[f] * span(0, level_of(f));
}

void ObddManager::EnumerateModels(
    ObddId f, const std::function<void(const Assignment&)>& on_model) {
  Assignment a(order_.size() > 0 ? *std::max_element(order_.begin(), order_.end()) + 1
                                 : 0,
               false);
  std::function<void(ObddId, uint32_t)> rec = [&](ObddId g, uint32_t level) {
    if (g == 0) return;
    const uint32_t gl =
        IsTerminal(g) ? static_cast<uint32_t>(order_.size()) : LevelOf(nodes_[g].var);
    if (level < gl) {
      // Free variable at this level: branch both ways.
      const Var v = order_[level];
      a[v] = false;
      rec(g, level + 1);
      a[v] = true;
      rec(g, level + 1);
      a[v] = false;
      return;
    }
    if (g == 1) {
      on_model(a);
      return;
    }
    const Node& n = nodes_[g];
    a[n.var] = false;
    rec(n.lo, level + 1);
    a[n.var] = true;
    rec(n.hi, level + 1);
    a[n.var] = false;
  };
  rec(f, 0);
}

size_t ObddManager::Size(ObddId f) const {
  return ReachableAscending(f).size();
}

NnfId ObddManager::ToNnf(ObddId f, NnfManager& nnf) const {
  const std::vector<ObddId> order = ReachableAscending(f);
  std::vector<NnfId> memo(nodes_.size(), kInvalidNnf);
  memo[0] = nnf.False();
  if (nodes_.size() > 1) memo[1] = nnf.True();
  for (const ObddId g : order) {
    if (IsTerminal(g)) continue;
    const Node& n = nodes_[g];
    memo[g] = nnf.Decision(n.var, memo[n.hi], memo[n.lo]);
  }
  return memo[f];
}

// Clause indices sorted by their deepest variable so conjunction grows
// locally. Shared by the plain and traced compile paths so both conjoin in
// the same order.
static std::vector<size_t> SortClausesByMaxLevel(const ObddManager& mgr,
                                                 const Cnf& cnf) {
  std::vector<size_t> idx(cnf.num_clauses());
  for (size_t i = 0; i < idx.size(); ++i) idx[i] = i;
  auto max_level = [&](size_t i) {
    uint32_t m = 0;
    for (Lit l : cnf.clause(i)) m = std::max(m, mgr.LevelOf(l.var()));
    return m;
  };
  std::sort(idx.begin(), idx.end(),
            [&](size_t a, size_t b) { return max_level(a) < max_level(b); });
  return idx;
}

ObddId ObddManager::CompileCnf(const Cnf& cnf) {
#ifdef TBC_CERTIFY
  // Certify-every-compile mode: run the traced path and check the result
  // before handing it back.
  ObddTrace trace;
  const ObddId root = CompileCnfTraced(cnf, &trace);
  CertifyObddOrDie(cnf, *this, std::move(trace), "ObddManager::CompileCnf");
  return root;
#else
  const std::vector<size_t> idx = SortClausesByMaxLevel(*this, cnf);
  ObddId acc = True();
  for (size_t i : idx) {
    ObddId clause = False();
    for (Lit l : cnf.clause(i)) clause = Or(clause, LiteralNode(l));
    acc = And(acc, clause);
    if (acc == False()) break;
  }
  return acc;
#endif
}

#if TBC_CERTIFY_TRACE_ON
ObddId ObddManager::CompileCnfTraced(const Cnf& cnf, ObddTrace* trace) {
  ObddTraceSink sink;
  ObddTraceSink* const saved = trace_;
  set_trace(&sink);
  const std::vector<size_t> idx = SortClausesByMaxLevel(*this, cnf);
  ObddId acc = True();
  for (size_t i : idx) {
    ObddId clause = False();
    for (Lit l : cnf.clause(i)) clause = Or(clause, LiteralNode(l));
    acc = And(acc, clause);
    trace->chain.push_back({static_cast<uint32_t>(i), clause, acc});
    if (acc == False()) break;
  }
  set_trace(saved);
  trace->order = order_;
  trace->nodes.resize(nodes_.size());
  for (size_t n = 0; n < nodes_.size(); ++n) {
    trace->nodes[n] = {nodes_[n].var, nodes_[n].lo, nodes_[n].hi};
  }
  trace->steps = std::move(sink.steps);
  trace->root = acc;
  return acc;
}
#endif

ObddId ObddManager::CompileFormula(const FormulaStore& store, FormulaId f) {
  FlatMap<FormulaId, ObddId> memo;
  std::function<ObddId(FormulaId)> rec = [&](FormulaId g) -> ObddId {
    if (const ObddId* hit = memo.Find(g)) return *hit;
    ObddId r = 0;
    switch (store.kind(g)) {
      case FormulaStore::Kind::kFalse:
        r = False();
        break;
      case FormulaStore::Kind::kTrue:
        r = True();
        break;
      case FormulaStore::Kind::kVar:
        r = LiteralNode(Pos(store.var(g)));
        break;
      case FormulaStore::Kind::kNot:
        r = Not(rec(store.child(g, 0)));
        break;
      case FormulaStore::Kind::kAnd: {
        r = True();
        for (size_t i = 0; i < store.num_children(g); ++i) {
          r = And(r, rec(store.child(g, i)));
        }
        break;
      }
      case FormulaStore::Kind::kOr: {
        r = False();
        for (size_t i = 0; i < store.num_children(g); ++i) {
          r = Or(r, rec(store.child(g, i)));
        }
        break;
      }
    }
    memo.Insert(g, r);
    return r;
  };
  return rec(f);
}

bool ObddManager::IsMonotoneIn(ObddId f, Var v) {
  const ObddId f0 = Restrict(f, v, false);
  const ObddId f1 = Restrict(f, v, true);
  return Implies(f0, f1) == True();
}

}  // namespace tbc
