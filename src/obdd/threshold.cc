#include "obdd/threshold.h"

#include <algorithm>
#include <unordered_map>

#include "base/check.h"
#include "base/hash.h"

namespace tbc {

ObddId CompileThreshold(ObddManager& mgr, const std::vector<Var>& vars,
                        const std::vector<int64_t>& weights, int64_t threshold) {
  TBC_CHECK(vars.size() == weights.size());
  // Test variables in manager order so the result is an ordered BDD.
  std::vector<size_t> idx(vars.size());
  for (size_t i = 0; i < idx.size(); ++i) idx[i] = i;
  std::sort(idx.begin(), idx.end(), [&](size_t a, size_t b) {
    return mgr.LevelOf(vars[a]) < mgr.LevelOf(vars[b]);
  });

  // Suffix bounds for early termination: after choosing the first i
  // variables with partial sum s, the final sum lies in
  // [s + suffix_min[i], s + suffix_max[i]].
  const size_t n = idx.size();
  std::vector<int64_t> suffix_min(n + 1, 0), suffix_max(n + 1, 0);
  for (size_t i = n; i-- > 0;) {
    const int64_t w = weights[idx[i]];
    suffix_min[i] = suffix_min[i + 1] + std::min<int64_t>(w, 0);
    suffix_max[i] = suffix_max[i + 1] + std::max<int64_t>(w, 0);
  }

  struct Key {
    size_t i;
    int64_t sum;
    bool operator==(const Key& o) const { return i == o.i && sum == o.sum; }
  };
  struct KeyHash {
    size_t operator()(const Key& k) const {
      return HashU64(k.i * 0x9e3779b97f4a7c15ull ^ static_cast<uint64_t>(k.sum));
    }
  };
  std::unordered_map<Key, ObddId, KeyHash> memo;

  std::function<ObddId(size_t, int64_t)> rec = [&](size_t i, int64_t sum) -> ObddId {
    if (sum + suffix_min[i] >= threshold) return mgr.True();
    if (sum + suffix_max[i] < threshold) return mgr.False();
    TBC_DCHECK(i < n);
    const Key key{i, sum};
    auto it = memo.find(key);
    if (it != memo.end()) return it->second;
    const ObddId lo = rec(i + 1, sum);
    const ObddId hi = rec(i + 1, sum + weights[idx[i]]);
    const ObddId r = mgr.MakeNode(vars[idx[i]], lo, hi);
    memo.emplace(key, r);
    return r;
  };
  return rec(0, 0);
}

}  // namespace tbc
