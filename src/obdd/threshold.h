#ifndef TBC_OBDD_THRESHOLD_H_
#define TBC_OBDD_THRESHOLD_H_

#include <cstdint>
#include <vector>

#include "obdd/obdd.h"

namespace tbc {

/// Compiles the linear threshold function  Σ_i weights[i]·x_{vars[i]} ≥
/// threshold  into an OBDD.
///
/// Linear threshold functions are the building block for compiling numeric
/// classifiers into circuits (paper §5): a naive Bayes decision is a
/// threshold test on summed log-odds [Chan & Darwiche 2003], and each
/// neuron of a binarized neural network computes a step of this form
/// [Shi et al. 2020]. The compilation is the interval-based dynamic
/// program: two partial sums reaching the same variable with the same
/// achievable outcome produce the same subgraph, so the result is reduced.
///
/// `weights` is parallel to `vars`; variables are tested in manager order.
ObddId CompileThreshold(ObddManager& mgr, const std::vector<Var>& vars,
                        const std::vector<int64_t>& weights, int64_t threshold);

}  // namespace tbc

#endif  // TBC_OBDD_THRESHOLD_H_
