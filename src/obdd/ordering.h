#ifndef TBC_OBDD_ORDERING_H_
#define TBC_OBDD_ORDERING_H_

#include <vector>

#include "logic/cnf.h"

namespace tbc {

/// FORCE static variable-ordering heuristic [Aloul, Markov & Sakallah]:
/// iteratively moves every variable to the center of gravity of its
/// clauses, shrinking clause spans. Good spans mean related variables sit
/// close together, which is what keeps OBDDs (and right-linear-vtree SDDs)
/// small — the practical lever behind the paper's observation that circuit
/// size ranges from linear to exponential with the order.
std::vector<Var> ForceOrder(const Cnf& cnf, size_t iterations);

/// Total clause span (Σ over clauses of max position − min position) under
/// an order — the objective FORCE descends on.
size_t TotalSpan(const Cnf& cnf, const std::vector<Var>& order);

}  // namespace tbc

#endif  // TBC_OBDD_ORDERING_H_
