#include "obdd/ordering.h"

#include <algorithm>
#include <numeric>

#include "base/check.h"

namespace tbc {

std::vector<Var> ForceOrder(const Cnf& cnf, size_t iterations) {
  const size_t n = cnf.num_vars();
  std::vector<double> position(n);
  for (size_t v = 0; v < n; ++v) position[v] = static_cast<double>(v);

  std::vector<double> new_position(n);
  std::vector<size_t> degree(n);
  for (size_t iter = 0; iter < iterations; ++iter) {
    std::fill(new_position.begin(), new_position.end(), 0.0);
    std::fill(degree.begin(), degree.end(), 0);
    for (const Clause& c : cnf.clauses()) {
      if (c.empty()) continue;
      double cog = 0.0;
      for (Lit l : c) cog += position[l.var()];
      cog /= static_cast<double>(c.size());
      for (Lit l : c) {
        new_position[l.var()] += cog;
        ++degree[l.var()];
      }
    }
    for (size_t v = 0; v < n; ++v) {
      position[v] = degree[v] > 0
                        ? new_position[v] / static_cast<double>(degree[v])
                        : position[v];
    }
    // Re-rank to integer positions (stable: ties keep previous order).
    std::vector<Var> ranked(n);
    std::iota(ranked.begin(), ranked.end(), 0);
    std::stable_sort(ranked.begin(), ranked.end(), [&](Var a, Var b) {
      return position[a] < position[b];
    });
    for (size_t i = 0; i < n; ++i) position[ranked[i]] = static_cast<double>(i);
  }

  std::vector<Var> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](Var a, Var b) {
    return position[a] < position[b];
  });
  return order;
}

size_t TotalSpan(const Cnf& cnf, const std::vector<Var>& order) {
  std::vector<size_t> pos(cnf.num_vars(), 0);
  for (size_t i = 0; i < order.size(); ++i) pos[order[i]] = i;
  size_t span = 0;
  for (const Clause& c : cnf.clauses()) {
    if (c.empty()) continue;
    size_t lo = SIZE_MAX, hi = 0;
    for (Lit l : c) {
      lo = std::min(lo, pos[l.var()]);
      hi = std::max(hi, pos[l.var()]);
    }
    span += hi - lo;
  }
  return span;
}

}  // namespace tbc
