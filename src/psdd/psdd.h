#ifndef TBC_PSDD_PSDD_H_
#define TBC_PSDD_PSDD_H_

#include <cstdint>
#include <string>
#include <vector>

#include "base/flat_table.h"
#include "base/guard.h"
#include "base/random.h"
#include "base/result.h"
#include "base/thread_pool.h"
#include "sdd/sdd.h"

namespace tbc {

/// Node index within a Psdd.
using PsddId = uint32_t;
constexpr PsddId kInvalidPsdd = static_cast<PsddId>(-1);

/// Evidence over variables: kTrue/kFalse observed, kUnknown unobserved.
enum class Obs : int8_t { kFalse = 0, kTrue = 1, kUnknown = -1 };
using PsddEvidence = std::vector<Obs>;

/// Probabilistic Sentential Decision Diagram [Kisa et al. 2014]
/// (paper §4, Figs 13-14).
///
/// A PSDD induces a probability distribution over the satisfying inputs of
/// an SDD (its *base*): each or-gate input carries a local probability, the
/// local distributions are independent, and together they are guaranteed to
/// form a normalized distribution over the base's models (Fig 13). The
/// structure here is the SDD *normalized* for its vtree: every variable of
/// a node's vtree appears in the node's subcircuit, with pass-through nodes
/// inserted where the (trimmed) SDD skipped vtree nodes, and a ⊤-leaf over
/// variable X carrying the Bernoulli parameter Pr(X=1).
///
/// Supported, all linear in PSDD size: probability of a complete input,
/// probability of evidence (MAR), all-variable marginals, MPE, sampling,
/// maximum-likelihood learning from complete data (paper Fig 15), and
/// PSDD multiplication [Shen, Choi & Darwiche 2016].
class Psdd {
 public:
  /// Builds the PSDD structure for the SDD `base` (must not be ⊥), with
  /// uniform parameters at every node.
  Psdd(SddManager& sdd, SddId base);

  const Vtree& vtree() const { return sdd_->vtree(); }
  size_t num_vars() const { return sdd_->num_vars(); }
  PsddId root() const { return root_; }

  /// PSDD size (number of elements over decision nodes) and node count.
  size_t Size() const;
  size_t num_nodes() const { return nodes_.size(); }

  /// Pr(x) of a complete input; 0 for inputs outside the base (Fig 14).
  double Probability(const Assignment& x) const;

  /// Pr(e) of partial evidence (MAR query; linear time).
  double ProbabilityEvidence(const PsddEvidence& e) const;

  /// Pr(e) for a batch of evidence vectors. With a pool of >1 threads the
  /// instances evaluate concurrently (one value array per lane); each
  /// output double is computed by exactly one lane from the shared
  /// read-only arena, so results are bit-identical across thread counts.
  /// Refuses (without partial output) when the guard trips.
  Result<std::vector<double>> ProbabilityEvidenceBatch(
      const std::vector<PsddEvidence>& evidence, Guard& guard,
      ThreadPool* pool = nullptr) const;

  /// Marginals Pr(X=1, e) for every variable X, in one up+down pass;
  /// normalized by Pr(e) when `normalized`.
  std::vector<double> Marginals(const PsddEvidence& e, bool normalized) const;

  /// MPE completing the evidence: argmax_x Pr(x, e) with its probability.
  struct Mpe {
    double probability = 0.0;
    Assignment assignment;
  };
  Mpe MostProbable(const PsddEvidence& e) const;

  /// Draws a sample from the distribution.
  Assignment Sample(Rng& rng) const;

  /// Maximum-likelihood parameters from complete data [Kisa et al. 2014]:
  /// one descent per example accumulating activation counts, then
  /// normalize; `laplace` is the add-α pseudo-count (0 = pure ML).
  /// `weights[i]` repeats data[i] that many times (empty = all 1).
  void LearnParameters(const std::vector<Assignment>& data,
                       const std::vector<double>& weights, double laplace);

  /// Log-likelihood of complete data under current parameters.
  double LogLikelihood(const std::vector<Assignment>& data) const;

  /// Guard- and pool-aware log-likelihood. Per-instance log-probabilities
  /// are independent (parallelized across pool lanes) and reduced serially
  /// in index order, so the sum is bit-identical for 1, 2, or N threads.
  Result<double> LogLikelihoodBounded(const std::vector<Assignment>& data,
                                      Guard& guard,
                                      ThreadPool* pool = nullptr) const;

  /// EM parameter learning from *incomplete* data (paper §4.1; [Choi, Van
  /// den Broeck & Darwiche 2015] extends Fig 15's learning to incomplete
  /// examples). Each E-step computes expected element activations with the
  /// same up+down differential pass as Marginals(); the M-step normalizes.
  /// On complete data one iteration reproduces LearnParameters exactly.
  /// Returns the final weighted log-likelihood; never decreases per
  /// iteration (the EM guarantee, asserted in tests).
  double LearnParametersEm(const std::vector<PsddEvidence>& data,
                           const std::vector<double>& weights, double laplace,
                           size_t iterations);

  /// Serializes all parameters, one line per parameterized node in
  /// structural (id) order — two PSDDs built from the same base on the
  /// same manager can exchange parameters (e.g. persisting a learned
  /// model). Format: "P <node_id> <theta...>".
  std::string SerializeParameters() const;
  /// Loads parameters written by SerializeParameters; fails on structural
  /// mismatch or non-distributions.
  Status LoadParameters(const std::string& text);

  /// Exact KL divergence KL(this || other) for two PSDDs with the *same
  /// structure* (both built from the same base on the same manager; only
  /// parameters differ). Decomposes into per-node local divergences
  /// weighted by this-distribution context probabilities — linear time,
  /// no enumeration. Aborts on structural mismatch.
  double KlDivergence(const Psdd& other) const;

  /// Product distribution Pr(x) ∝ this(x) · other(x) [Shen et al. 2016].
  /// Both PSDDs must share the same manager/vtree. Returns the new PSDD and
  /// writes the normalization constant Σ_x this(x)·other(x) if requested.
  Psdd Multiply(const Psdd& other, double* normalization_constant) const;

  // --- structure access (tests, serialization, conditional PSDDs) ---
  enum class Kind : uint8_t { kLiteral, kTop, kDecision };
  Kind kind(PsddId n) const { return nodes_[n].kind; }
  Lit literal(PsddId n) const { return Lit::FromCode(nodes_[n].lit_code); }
  /// Bernoulli Pr(X=1) of a ⊤-leaf.
  double theta_true(PsddId n) const { return nodes_[n].theta_true; }
  VtreeId vtree_node(PsddId n) const { return nodes_[n].vtree; }
  struct Element {
    PsddId prime;
    PsddId sub;
    double theta;
  };
  const std::vector<Element>& elements(PsddId n) const {
    return nodes_[n].elements;
  }

 private:
  struct Node {
    Kind kind;
    VtreeId vtree;
    uint32_t lit_code = 0;     // kLiteral
    double theta_true = 0.5;   // kTop
    std::vector<Element> elements;  // kDecision
    // Learning scratch: activation counts.
    double count_true = 0.0;   // kTop
    double count_total = 0.0;
    std::vector<double> element_counts;
  };

  // Structure-of-arrays mirror of nodes_ used by every evaluation pass.
  // Node ids are already topological (children precede parents), so a
  // single ascending sweep over these contiguous arrays *is* the level
  // schedule; elements of all decision nodes live in one flat CSR block
  // ([elem_begin[n], elem_begin[n+1])). nodes_ stays the source of truth
  // for structure and learning scratch; the arena holds the evaluation
  // view (payload pre-resolves the ⊤-leaf's variable, avoiding a vtree
  // lookup per node per query).
  struct EvalArena {
    std::vector<uint8_t> kind;         // Kind
    std::vector<uint32_t> payload;     // lit code (kLiteral) / variable (kTop)
    std::vector<double> theta_true;    // kTop
    std::vector<uint32_t> elem_begin;  // size num_nodes()+1 (CSR offsets)
    std::vector<PsddId> elem_prime;
    std::vector<PsddId> elem_sub;
    std::vector<double> elem_theta;
  };

  // Builds the normalized structure for SDD node `f` at vtree node `v`.
  PsddId Build(VtreeId v, SddId f);

  // Rebuilds the arena from nodes_ (after construction or Multiply).
  void RebuildArena();
  // Copies only the parameters into the arena (after learning/loading).
  void SyncArenaParameters();

  // Value pass: value[n] = Pr_n(e restricted to n's vtree vars). Writes
  // every slot of `value` exactly once (no zeroing needed); reads only the
  // arena, so concurrent calls with distinct `value` buffers are safe.
  void ValuePassInto(const PsddEvidence& e, std::vector<double>& value) const;
  std::vector<double> ValuePass(const PsddEvidence& e) const;

  // Learning descent for one weighted example.
  void CountExample(PsddId n, const Assignment& x, double weight);

  SddManager* sdd_;
  std::vector<Node> nodes_;
  PsddId root_ = kInvalidPsdd;
  EvalArena arena_;
  // Memo for Build: key (vtree, sdd node).
  FlatMap<uint64_t, PsddId> build_memo_;
};

}  // namespace tbc

#endif  // TBC_PSDD_PSDD_H_
