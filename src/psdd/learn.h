#ifndef TBC_PSDD_LEARN_H_
#define TBC_PSDD_LEARN_H_

#include <utility>
#include <vector>

#include "base/guard.h"
#include "base/result.h"
#include "psdd/psdd.h"

namespace tbc {

/// A complete dataset as weighted rows, the shape of the paper's Fig 15
/// course-enrollment table: each row is a complete assignment plus the
/// number of individuals with that assignment.
struct WeightedData {
  std::vector<Assignment> examples;
  std::vector<double> weights;

  /// Total weight (e.g. number of students).
  double TotalWeight() const;

  static WeightedData FromCounts(
      const std::vector<std::pair<Assignment, double>>& rows);
};

/// Compiles `constraint`, learns maximum-likelihood PSDD parameters from
/// the data, and returns the learned PSDD — the full Fig 15 pipeline
/// (knowledge + data -> distribution).
Psdd LearnPsdd(SddManager& mgr, SddId constraint, const WeightedData& data,
               double laplace);

/// Resource-governed, validating variant: rejects malformed data
/// (example/weight length mismatch, wrong assignment width, negative or
/// zero total weight) with kInvalidInput instead of aborting downstream,
/// and charges the circuit traversals against `guard` (one node charge per
/// example, approximating the linear learning pass).
Result<Psdd> LearnPsddBounded(SddManager& mgr, SddId constraint,
                              const WeightedData& data, double laplace,
                              Guard& guard);

/// Empirical KL divergence KL(data || psdd) over the distinct rows
/// (test/evaluation metric; data weights are normalized internally).
/// Aborts if the PSDD assigns zero probability to a data row.
double EmpiricalKl(const WeightedData& data, const Psdd& psdd);

/// Fallible variant: returns kInvalidInput when the data is empty or a row
/// has zero probability under the PSDD (KL would be infinite).
Result<double> EmpiricalKlChecked(const WeightedData& data, const Psdd& psdd);

}  // namespace tbc

#endif  // TBC_PSDD_LEARN_H_
