#include "psdd/conditional.h"

#include "base/check.h"

namespace tbc {

size_t ConditionalPsdd::AddBranch(SddId guard, SddId child_base) {
  TBC_CHECK(child_mgr_ != nullptr);
  branches_.push_back({guard, Psdd(*child_mgr_, child_base)});
  return branches_.size() - 1;
}

size_t ConditionalPsdd::SelectBranch(const Assignment& assignment) const {
  if (parent_mgr_ == nullptr) {
    TBC_CHECK(branches_.size() == 1);
    return 0;
  }
  for (size_t i = 0; i < branches_.size(); ++i) {
    if (parent_mgr_->Evaluate(branches_[i].guard, assignment)) return i;
  }
  return SIZE_MAX;
}

double ConditionalPsdd::Conditional(const Assignment& x) const {
  const size_t branch = SelectBranch(x);
  if (branch == SIZE_MAX) return 0.0;
  return branches_[branch].distribution.Probability(x);
}

void ConditionalPsdd::LearnParameters(const std::vector<Assignment>& data,
                                      const std::vector<double>& weights,
                                      double laplace) {
  std::vector<std::vector<Assignment>> routed(branches_.size());
  std::vector<std::vector<double>> routed_weights(branches_.size());
  for (size_t i = 0; i < data.size(); ++i) {
    const size_t branch = SelectBranch(data[i]);
    if (branch == SIZE_MAX) continue;
    routed[branch].push_back(data[i]);
    routed_weights[branch].push_back(weights.empty() ? 1.0 : weights[i]);
  }
  for (size_t b = 0; b < branches_.size(); ++b) {
    branches_[b].distribution.LearnParameters(routed[b], routed_weights[b],
                                              laplace);
  }
}

void ConditionalPsdd::SampleChildren(Assignment& x, Rng& rng) const {
  const size_t branch = SelectBranch(x);
  TBC_CHECK_MSG(branch != SIZE_MAX, "parent state outside every guard");
  const Assignment child = branches_[branch].distribution.Sample(rng);
  // Copy values of the child manager's variables into x.
  const Vtree& vt = branches_[branch].distribution.vtree();
  for (Var v : vt.VarsBelow(vt.root())) {
    if (x.size() <= v) x.resize(v + 1, false);
    x[v] = child[v];
  }
}

bool ConditionalPsdd::GuardsAreDisjoint() const {
  if (parent_mgr_ == nullptr) return branches_.size() <= 1;
  for (size_t i = 0; i < branches_.size(); ++i) {
    for (size_t j = i + 1; j < branches_.size(); ++j) {
      if (parent_mgr_->Conjoin(branches_[i].guard, branches_[j].guard) !=
          parent_mgr_->False()) {
        return false;
      }
    }
  }
  return true;
}

size_t StructuredBayesNet::AddCluster(
    std::string name, std::vector<Var> vars, std::vector<size_t> parents,
    std::unique_ptr<ConditionalPsdd> conditional) {
  for (size_t p : parents) TBC_CHECK(p < clusters_.size());
  clusters_.push_back(
      {std::move(name), std::move(vars), std::move(parents), std::move(conditional)});
  return clusters_.size() - 1;
}

double StructuredBayesNet::JointProbability(const Assignment& x) const {
  double p = 1.0;
  for (const Cluster& c : clusters_) p *= c.conditional->Conditional(x);
  return p;
}

Assignment StructuredBayesNet::Sample(size_t num_global_vars, Rng& rng) const {
  Assignment x(num_global_vars, false);
  for (const Cluster& c : clusters_) c.conditional->SampleChildren(x, rng);
  return x;
}

void StructuredBayesNet::LearnParameters(const std::vector<Assignment>& data,
                                         const std::vector<double>& weights,
                                         double laplace) {
  for (Cluster& c : clusters_) {
    c.conditional->LearnParameters(data, weights, laplace);
  }
}

}  // namespace tbc
