#include "psdd/learn.h"

#include <cmath>

#include "base/check.h"

namespace tbc {

double WeightedData::TotalWeight() const {
  double total = 0.0;
  for (double w : weights) total += w;
  return total;
}

WeightedData WeightedData::FromCounts(
    const std::vector<std::pair<Assignment, double>>& rows) {
  WeightedData data;
  for (const auto& [assignment, count] : rows) {
    data.examples.push_back(assignment);
    data.weights.push_back(count);
  }
  return data;
}

Psdd LearnPsdd(SddManager& mgr, SddId constraint, const WeightedData& data,
               double laplace) {
  Psdd psdd(mgr, constraint);
  psdd.LearnParameters(data.examples, data.weights, laplace);
  return psdd;
}

Result<Psdd> LearnPsddBounded(SddManager& mgr, SddId constraint,
                              const WeightedData& data, double laplace,
                              Guard& guard) {
  if (data.examples.size() != data.weights.size()) {
    return Status::InvalidInput("examples/weights length mismatch: " +
                                std::to_string(data.examples.size()) + " vs " +
                                std::to_string(data.weights.size()));
  }
  if (laplace < 0.0) {
    return Status::InvalidInput("negative Laplace smoothing");
  }
  for (size_t i = 0; i < data.examples.size(); ++i) {
    if (data.examples[i].size() != mgr.num_vars()) {
      return Status::InvalidInput("example " + std::to_string(i) + " has " +
                                  std::to_string(data.examples[i].size()) +
                                  " variables, expected " +
                                  std::to_string(mgr.num_vars()));
    }
    if (data.weights[i] < 0.0) {
      return Status::InvalidInput("negative weight at row " + std::to_string(i));
    }
  }
  if (data.TotalWeight() <= 0.0 && laplace <= 0.0) {
    return Status::InvalidInput("total data weight is zero and no smoothing");
  }
  // Learning is one circuit pass per example: charge it up front so node
  // budgets refuse before the work instead of after.
  TBC_RETURN_IF_ERROR(guard.ChargeNodes(data.examples.size()));
  TBC_RETURN_IF_ERROR(guard.Check());
  return LearnPsdd(mgr, constraint, data, laplace);
}

double EmpiricalKl(const WeightedData& data, const Psdd& psdd) {
  const double total = data.TotalWeight();
  TBC_CHECK(total > 0.0);
  double kl = 0.0;
  for (size_t i = 0; i < data.examples.size(); ++i) {
    const double p = data.weights[i] / total;
    if (p <= 0.0) continue;
    const double q = psdd.Probability(data.examples[i]);
    TBC_CHECK_MSG(q > 0.0, "PSDD assigns zero probability to a data row");
    kl += p * std::log(p / q);
  }
  return kl;
}

Result<double> EmpiricalKlChecked(const WeightedData& data, const Psdd& psdd) {
  if (data.examples.size() != data.weights.size()) {
    return Status::InvalidInput("examples/weights length mismatch");
  }
  const double total = data.TotalWeight();
  if (total <= 0.0) return Status::InvalidInput("total data weight is zero");
  double kl = 0.0;
  for (size_t i = 0; i < data.examples.size(); ++i) {
    const double p = data.weights[i] / total;
    if (p <= 0.0) continue;
    const double q = psdd.Probability(data.examples[i]);
    if (q <= 0.0) {
      return Status::InvalidInput("PSDD assigns zero probability to data row " +
                                  std::to_string(i) + " (KL is infinite)");
    }
    kl += p * std::log(p / q);
  }
  return kl;
}

}  // namespace tbc
