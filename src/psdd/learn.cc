#include "psdd/learn.h"

#include <cmath>

#include "base/check.h"

namespace tbc {

double WeightedData::TotalWeight() const {
  double total = 0.0;
  for (double w : weights) total += w;
  return total;
}

WeightedData WeightedData::FromCounts(
    const std::vector<std::pair<Assignment, double>>& rows) {
  WeightedData data;
  for (const auto& [assignment, count] : rows) {
    data.examples.push_back(assignment);
    data.weights.push_back(count);
  }
  return data;
}

Psdd LearnPsdd(SddManager& mgr, SddId constraint, const WeightedData& data,
               double laplace) {
  Psdd psdd(mgr, constraint);
  psdd.LearnParameters(data.examples, data.weights, laplace);
  return psdd;
}

double EmpiricalKl(const WeightedData& data, const Psdd& psdd) {
  const double total = data.TotalWeight();
  TBC_CHECK(total > 0.0);
  double kl = 0.0;
  for (size_t i = 0; i < data.examples.size(); ++i) {
    const double p = data.weights[i] / total;
    if (p <= 0.0) continue;
    const double q = psdd.Probability(data.examples[i]);
    TBC_CHECK_MSG(q > 0.0, "PSDD assigns zero probability to a data row");
    kl += p * std::log(p / q);
  }
  return kl;
}

}  // namespace tbc
