#ifndef TBC_PSDD_CONDITIONAL_H_
#define TBC_PSDD_CONDITIONAL_H_

#include <memory>
#include <string>
#include <vector>

#include "psdd/psdd.h"

namespace tbc {

/// Conditional PSDD [Shen, Choi & Darwiche 2018] (paper §4.2, Figs 21/24).
///
/// Represents a family of distributions over *child* variables X selected
/// by the state of *parent* variables P: evaluating the parent state picks
/// one distribution (Fig 24's "selecting conditional distributions"). The
/// paper's circuit form is an SDD over the parents (yellow in Fig 21)
/// feeding a multi-rooted PSDD (green); we represent the same object
/// explicitly as a partition of the parent space — a list of branches
/// (guard SDD over parents, PSDD over children). Branch guards must be
/// mutually exclusive; parent states outside every guard have undefined
/// conditionals (zero).
class ConditionalPsdd {
 public:
  /// `parent_mgr` may be null for root clusters (single unconditional
  /// branch). Managers use global variable ids.
  ConditionalPsdd(SddManager* parent_mgr, SddManager* child_mgr)
      : parent_mgr_(parent_mgr), child_mgr_(child_mgr) {}

  /// Adds a branch: when `guard` holds of the parents, the children follow
  /// a PSDD with base `child_base`. Returns the branch index.
  size_t AddBranch(SddId guard, SddId child_base);

  size_t num_branches() const { return branches_.size(); }
  Psdd& distribution(size_t branch) { return branches_[branch].distribution; }
  const Psdd& distribution(size_t branch) const {
    return branches_[branch].distribution;
  }
  SddId guard(size_t branch) const { return branches_[branch].guard; }

  /// Index of the branch whose guard is satisfied by the (global)
  /// assignment; SIZE_MAX if none.
  size_t SelectBranch(const Assignment& assignment) const;

  /// Pr(child values of x | parent values of x); 0 outside every guard.
  double Conditional(const Assignment& x) const;

  /// Maximum-likelihood parameters from complete (global) examples:
  /// each row is routed to its branch and counted there.
  void LearnParameters(const std::vector<Assignment>& data,
                       const std::vector<double>& weights, double laplace);

  /// Samples child variables into `x` given the parent values already in
  /// `x`. Aborts if no guard matches.
  void SampleChildren(Assignment& x, Rng& rng) const;

  /// True iff guards are pairwise mutually exclusive (validation; the
  /// check is pairwise-conjoin-is-false on the parent manager).
  bool GuardsAreDisjoint() const;

 private:
  struct Branch {
    SddId guard;
    Psdd distribution;
  };
  SddManager* parent_mgr_;
  SddManager* child_mgr_;
  std::vector<Branch> branches_;
};

/// Structured Bayesian network [Shen et al. 2018] (paper Fig 19): a
/// cluster DAG where each node holds a set of variables quantified by a
/// conditional PSDD given its parent clusters' variables.
class StructuredBayesNet {
 public:
  /// Adds a cluster; `parents` are indices of earlier clusters. Returns the
  /// cluster index. The conditional's child manager must cover `vars`.
  size_t AddCluster(std::string name, std::vector<Var> vars,
                    std::vector<size_t> parents,
                    std::unique_ptr<ConditionalPsdd> conditional);

  size_t num_clusters() const { return clusters_.size(); }
  ConditionalPsdd& conditional(size_t i) { return *clusters_[i].conditional; }
  const std::vector<Var>& cluster_vars(size_t i) const {
    return clusters_[i].vars;
  }

  /// Pr(x) = Π_clusters Pr(cluster vars | parent vars) — the SBN chain
  /// rule over the cluster DAG.
  double JointProbability(const Assignment& x) const;

  /// Topological forward sampling.
  Assignment Sample(size_t num_global_vars, Rng& rng) const;

  /// Learns every conditional from complete global data.
  void LearnParameters(const std::vector<Assignment>& data,
                       const std::vector<double>& weights, double laplace);

 private:
  struct Cluster {
    std::string name;
    std::vector<Var> vars;
    std::vector<size_t> parents;
    std::unique_ptr<ConditionalPsdd> conditional;
  };
  std::vector<Cluster> clusters_;
};

}  // namespace tbc

#endif  // TBC_PSDD_CONDITIONAL_H_
