#include "psdd/psdd.h"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <cstdio>
#include <cstdlib>
#include <cmath>
#include <functional>

#include "base/check.h"
#include "base/observability.h"

#ifdef TBC_VALIDATE
#include "analysis/validate.h"
#endif

namespace tbc {

namespace {
uint64_t BuildKey(VtreeId v, SddId f) {
  return (static_cast<uint64_t>(v) << 32) | f;
}
}  // namespace

Psdd::Psdd(SddManager& sdd, SddId base) : sdd_(&sdd) {
  TBC_CHECK_MSG(base != sdd.False(), "PSDD base must be satisfiable");
  root_ = Build(sdd.vtree().root(), base);
  RebuildArena();
#ifdef TBC_VALIDATE
  ValidatePsddOrDie(*this, "Psdd::Psdd");
#endif
}

PsddId Psdd::Build(VtreeId v, SddId f) {
  const uint64_t key = BuildKey(v, f);
  if (const PsddId* hit = build_memo_.Find(key)) return *hit;

  Node node;
  node.vtree = v;
  const Vtree& vt = sdd_->vtree();
  if (vt.IsLeaf(v)) {
    if (f == sdd_->True()) {
      node.kind = Kind::kTop;
      node.theta_true = 0.5;
    } else {
      TBC_CHECK_MSG(sdd_->IsLiteral(f), "non-literal SDD node at leaf vtree");
      node.kind = Kind::kLiteral;
      node.lit_code = sdd_->literal(f).code();
    }
  } else {
    node.kind = Kind::kDecision;
    if (f == sdd_->True()) {
      node.elements.push_back(
          {Build(vt.left(v), sdd_->True()), Build(vt.right(v), sdd_->True()), 1.0});
    } else if (sdd_->IsDecision(f) && sdd_->vtree_node(f) == v) {
      for (const auto& [p, s] : sdd_->elements(f)) {
        if (s == sdd_->False()) continue;  // probability-zero region
        node.elements.push_back({Build(vt.left(v), p), Build(vt.right(v), s), 0.0});
      }
      TBC_CHECK(!node.elements.empty());
      for (auto& e : node.elements) {
        e.theta = 1.0 / static_cast<double>(node.elements.size());
      }
    } else {
      // f lives strictly inside one side of v: insert a pass-through node.
      const VtreeId vf = sdd_->vtree_node(f);
      if (vt.IsAncestorOrSelf(vt.left(v), vf)) {
        node.elements.push_back(
            {Build(vt.left(v), f), Build(vt.right(v), sdd_->True()), 1.0});
      } else {
        node.elements.push_back(
            {Build(vt.left(v), sdd_->True()), Build(vt.right(v), f), 1.0});
      }
    }
    node.element_counts.assign(node.elements.size(), 0.0);
  }
  nodes_.push_back(std::move(node));
  const PsddId id = static_cast<PsddId>(nodes_.size() - 1);
  build_memo_.Insert(key, id);
  return id;
}

void Psdd::RebuildArena() {
  const size_t n = nodes_.size();
  arena_.kind.resize(n);
  arena_.payload.resize(n);
  arena_.theta_true.resize(n);
  arena_.elem_begin.assign(n + 1, 0);
  size_t total = 0;
  for (const Node& node : nodes_) total += node.elements.size();
  arena_.elem_prime.clear();
  arena_.elem_sub.clear();
  arena_.elem_theta.clear();
  arena_.elem_prime.reserve(total);
  arena_.elem_sub.reserve(total);
  arena_.elem_theta.reserve(total);
  for (size_t i = 0; i < n; ++i) {
    const Node& node = nodes_[i];
    arena_.kind[i] = static_cast<uint8_t>(node.kind);
    arena_.payload[i] = node.kind == Kind::kTop
                            ? static_cast<uint32_t>(vtree().var(node.vtree))
                            : node.lit_code;
    arena_.theta_true[i] = node.theta_true;
    arena_.elem_begin[i] = static_cast<uint32_t>(arena_.elem_prime.size());
    for (const Element& el : node.elements) {
      arena_.elem_prime.push_back(el.prime);
      arena_.elem_sub.push_back(el.sub);
      arena_.elem_theta.push_back(el.theta);
    }
  }
  arena_.elem_begin[n] = static_cast<uint32_t>(arena_.elem_prime.size());
  TBC_COUNT("psdd.arena.rebuilds");
  // Histogram max doubles as the peak arena footprint across rebuilds.
  TBC_OBSERVE_VALUE("psdd.arena.bytes",
                    n * (sizeof(uint8_t) + sizeof(uint32_t) + sizeof(double)) +
                        (n + 1) * sizeof(uint32_t) +
                        total * (2 * sizeof(uint32_t) + sizeof(double)));
}

void Psdd::SyncArenaParameters() {
  for (size_t i = 0; i < nodes_.size(); ++i) {
    arena_.theta_true[i] = nodes_[i].theta_true;
    uint32_t k = arena_.elem_begin[i];
    for (const Element& el : nodes_[i].elements) arena_.elem_theta[k++] = el.theta;
  }
}

size_t Psdd::Size() const {
  size_t size = 0;
  for (const Node& n : nodes_) size += n.elements.size();
  return size;
}

void Psdd::ValuePassInto(const PsddEvidence& e, std::vector<double>& value) const {
  TBC_COUNT("psdd.eval.value_passes");
  const size_t num = nodes_.size();
  value.resize(num);
  // Children precede parents by construction, so ascending id order is the
  // level schedule; the pass touches only the arena's contiguous arrays.
  for (size_t n = 0; n < num; ++n) {
    switch (static_cast<Kind>(arena_.kind[n])) {
      case Kind::kLiteral: {
        const Lit l = Lit::FromCode(arena_.payload[n]);
        const Obs o = l.var() < e.size() ? e[l.var()] : Obs::kUnknown;
        value[n] =
            (o == Obs::kUnknown || (o == Obs::kTrue) == l.positive()) ? 1.0 : 0.0;
        break;
      }
      case Kind::kTop: {
        const Var x = arena_.payload[n];
        const Obs o = x < e.size() ? e[x] : Obs::kUnknown;
        value[n] = o == Obs::kUnknown ? 1.0
                   : o == Obs::kTrue  ? arena_.theta_true[n]
                                      : 1.0 - arena_.theta_true[n];
        break;
      }
      case Kind::kDecision: {
        double sum = 0.0;
        for (uint32_t k = arena_.elem_begin[n]; k < arena_.elem_begin[n + 1]; ++k) {
          sum += arena_.elem_theta[k] * value[arena_.elem_prime[k]] *
                 value[arena_.elem_sub[k]];
        }
        value[n] = sum;
        break;
      }
    }
  }
}

std::vector<double> Psdd::ValuePass(const PsddEvidence& e) const {
  std::vector<double> value;
  ValuePassInto(e, value);
  return value;
}

double Psdd::Probability(const Assignment& x) const {
  PsddEvidence e(num_vars());
  for (Var v = 0; v < num_vars(); ++v) {
    e[v] = x[v] ? Obs::kTrue : Obs::kFalse;
  }
  return ProbabilityEvidence(e);
}

double Psdd::ProbabilityEvidence(const PsddEvidence& e) const {
  // Reuse one scratch buffer per thread across queries: ValuePassInto
  // writes every slot, so stale contents are harmless.
  static thread_local std::vector<double> value;
  ValuePassInto(e, value);
  return value[root_];
}

Result<std::vector<double>> Psdd::ProbabilityEvidenceBatch(
    const std::vector<PsddEvidence>& evidence, Guard& guard,
    ThreadPool* pool) const {
  TBC_RETURN_IF_ERROR(guard.Check());
  TBC_OBSERVE_VALUE("psdd.eval.batch_size", evidence.size());
  std::vector<double> out(evidence.size(), 0.0);
  const std::function<void(size_t)> body = [&](size_t i) {
    static thread_local std::vector<double> value;
    ValuePassInto(evidence[i], value);
    out[i] = value[root_];
  };
  if (pool != nullptr && pool->num_threads() > 1 && evidence.size() > 1) {
    TBC_RETURN_IF_ERROR(pool->ParallelFor(0, evidence.size(), 1, body, &guard));
  } else {
    for (size_t i = 0; i < evidence.size(); ++i) {
      TBC_RETURN_IF_ERROR(guard.Poll());
      body(i);
    }
  }
  TBC_RETURN_IF_ERROR(guard.Check());
  return out;
}

std::vector<double> Psdd::Marginals(const PsddEvidence& e, bool normalized) const {
  std::vector<double> value;
  ValuePassInto(e, value);
  std::vector<double> deriv(nodes_.size(), 0.0);
  deriv[root_] = 1.0;
  for (size_t n = nodes_.size(); n-- > 0;) {
    if (static_cast<Kind>(arena_.kind[n]) != Kind::kDecision || deriv[n] == 0.0) {
      continue;
    }
    for (uint32_t k = arena_.elem_begin[n]; k < arena_.elem_begin[n + 1]; ++k) {
      deriv[arena_.elem_prime[k]] +=
          deriv[n] * arena_.elem_theta[k] * value[arena_.elem_sub[k]];
      deriv[arena_.elem_sub[k]] +=
          deriv[n] * arena_.elem_theta[k] * value[arena_.elem_prime[k]];
    }
  }
  std::vector<double> marginal(num_vars(), 0.0);
  for (size_t n = 0; n < nodes_.size(); ++n) {
    const Kind kind = static_cast<Kind>(arena_.kind[n]);
    if (kind == Kind::kLiteral) {
      const Lit l = Lit::FromCode(arena_.payload[n]);
      const Obs o = l.var() < e.size() ? e[l.var()] : Obs::kUnknown;
      const bool allows_true = o != Obs::kFalse;
      if (l.positive() && allows_true) marginal[l.var()] += deriv[n];
    } else if (kind == Kind::kTop) {
      const Var x = arena_.payload[n];
      const Obs o = x < e.size() ? e[x] : Obs::kUnknown;
      if (o != Obs::kFalse) marginal[x] += deriv[n] * arena_.theta_true[n];
    }
  }
  if (normalized) {
    const double pe = value[root_];
    TBC_CHECK_MSG(pe > 0.0, "zero-probability evidence");
    for (double& m : marginal) m /= pe;
  }
  return marginal;
}

Psdd::Mpe Psdd::MostProbable(const PsddEvidence& e) const {
  // Max pass over the arena (same schedule as ValuePassInto).
  std::vector<double> best(nodes_.size(), 0.0);
  for (size_t n = 0; n < nodes_.size(); ++n) {
    switch (static_cast<Kind>(arena_.kind[n])) {
      case Kind::kLiteral: {
        const Lit l = Lit::FromCode(arena_.payload[n]);
        const Obs o = l.var() < e.size() ? e[l.var()] : Obs::kUnknown;
        best[n] =
            (o == Obs::kUnknown || (o == Obs::kTrue) == l.positive()) ? 1.0 : 0.0;
        break;
      }
      case Kind::kTop: {
        const Var x = arena_.payload[n];
        const Obs o = x < e.size() ? e[x] : Obs::kUnknown;
        const double t = arena_.theta_true[n];
        best[n] = o == Obs::kUnknown ? std::max(t, 1.0 - t)
                  : o == Obs::kTrue  ? t
                                     : 1.0 - t;
        break;
      }
      case Kind::kDecision: {
        double m = 0.0;
        for (uint32_t k = arena_.elem_begin[n]; k < arena_.elem_begin[n + 1]; ++k) {
          m = std::max(m, arena_.elem_theta[k] * best[arena_.elem_prime[k]] *
                              best[arena_.elem_sub[k]]);
        }
        best[n] = m;
        break;
      }
    }
  }

  Mpe result;
  result.probability = best[root_];
  result.assignment.assign(num_vars(), false);
  if (result.probability <= 0.0) return result;

  // Traceback. Ties break on the first maximizing element in storage
  // order, so the assignment is deterministic.
  std::vector<PsddId> stack = {root_};
  while (!stack.empty()) {
    const PsddId n = stack.back();
    stack.pop_back();
    switch (static_cast<Kind>(arena_.kind[n])) {
      case Kind::kLiteral: {
        const Lit l = Lit::FromCode(arena_.payload[n]);
        result.assignment[l.var()] = l.positive();
        break;
      }
      case Kind::kTop: {
        const Var x = arena_.payload[n];
        const Obs o = x < e.size() ? e[x] : Obs::kUnknown;
        result.assignment[x] = o == Obs::kUnknown
                                   ? arena_.theta_true[n] >= 0.5
                                   : o == Obs::kTrue;
        break;
      }
      case Kind::kDecision: {
        double m = -1.0;
        uint32_t chosen = arena_.elem_begin[n];
        for (uint32_t k = arena_.elem_begin[n]; k < arena_.elem_begin[n + 1]; ++k) {
          const double v = arena_.elem_theta[k] * best[arena_.elem_prime[k]] *
                           best[arena_.elem_sub[k]];
          if (v > m) {
            m = v;
            chosen = k;
          }
        }
        stack.push_back(arena_.elem_prime[chosen]);
        stack.push_back(arena_.elem_sub[chosen]);
        break;
      }
    }
  }
  return result;
}

Assignment Psdd::Sample(Rng& rng) const {
  Assignment x(num_vars(), false);
  std::vector<PsddId> stack = {root_};
  while (!stack.empty()) {
    const PsddId n = stack.back();
    stack.pop_back();
    const Node& node = nodes_[n];
    switch (node.kind) {
      case Kind::kLiteral: {
        const Lit l = Lit::FromCode(node.lit_code);
        x[l.var()] = l.positive();
        break;
      }
      case Kind::kTop:
        x[vtree().var(node.vtree)] = rng.Flip(node.theta_true);
        break;
      case Kind::kDecision: {
        double u = rng.Uniform();
        const Element* chosen = &node.elements.back();
        for (const Element& el : node.elements) {
          if (u < el.theta) {
            chosen = &el;
            break;
          }
          u -= el.theta;
        }
        stack.push_back(chosen->prime);
        stack.push_back(chosen->sub);
        break;
      }
    }
  }
  return x;
}

void Psdd::CountExample(PsddId root, const Assignment& x, double weight) {
  // Bottom-up support satisfaction for every node under this example.
  std::vector<int8_t> sat(nodes_.size(), 0);
  for (PsddId n = 0; n < nodes_.size(); ++n) {
    const Node& node = nodes_[n];
    switch (node.kind) {
      case Kind::kLiteral: {
        const Lit l = Lit::FromCode(node.lit_code);
        sat[n] = x[l.var()] == l.positive() ? 1 : 0;
        break;
      }
      case Kind::kTop:
        sat[n] = 1;
        break;
      case Kind::kDecision: {
        int8_t s = 0;
        for (const Element& el : node.elements) {
          if (sat[el.prime] && sat[el.sub]) s = 1;
        }
        sat[n] = s;
        break;
      }
    }
  }
  if (!sat[root]) return;  // example outside the base: contributes nothing

  // Descent along the active elements.
  std::vector<PsddId> stack = {root};
  while (!stack.empty()) {
    const PsddId n = stack.back();
    stack.pop_back();
    Node& node = nodes_[n];
    switch (node.kind) {
      case Kind::kLiteral:
        break;
      case Kind::kTop: {
        node.count_total += weight;
        if (x[vtree().var(node.vtree)]) node.count_true += weight;
        break;
      }
      case Kind::kDecision: {
        node.count_total += weight;
        for (size_t i = 0; i < node.elements.size(); ++i) {
          const Element& el = node.elements[i];
          if (sat[el.prime] && sat[el.sub]) {
            node.element_counts[i] += weight;
            stack.push_back(el.prime);
            stack.push_back(el.sub);
            break;  // exactly one element is active
          }
        }
        break;
      }
    }
  }
}

void Psdd::LearnParameters(const std::vector<Assignment>& data,
                           const std::vector<double>& weights, double laplace) {
  for (Node& n : nodes_) {
    n.count_true = 0.0;
    n.count_total = 0.0;
    std::fill(n.element_counts.begin(), n.element_counts.end(), 0.0);
  }
  for (size_t i = 0; i < data.size(); ++i) {
    CountExample(root_, data[i], weights.empty() ? 1.0 : weights[i]);
  }
  for (Node& n : nodes_) {
    if (n.kind == Kind::kTop) {
      const double denom = n.count_total + 2.0 * laplace;
      n.theta_true = denom > 0.0 ? (n.count_true + laplace) / denom : 0.5;
    } else if (n.kind == Kind::kDecision) {
      const double k = static_cast<double>(n.elements.size());
      const double denom = n.count_total + laplace * k;
      for (size_t i = 0; i < n.elements.size(); ++i) {
        n.elements[i].theta = denom > 0.0
                                  ? (n.element_counts[i] + laplace) / denom
                                  : 1.0 / k;
      }
    }
  }
  SyncArenaParameters();
#ifdef TBC_VALIDATE
  ValidatePsddOrDie(*this, "Psdd::LearnParameters");
#endif
}

double Psdd::LogLikelihood(const std::vector<Assignment>& data) const {
  return LogLikelihoodBounded(data, Guard::Unlimited()).value();
}

Result<double> Psdd::LogLikelihoodBounded(const std::vector<Assignment>& data,
                                          Guard& guard, ThreadPool* pool) const {
  TBC_RETURN_IF_ERROR(guard.Check());
  std::vector<double> logp(data.size(), 0.0);
  const std::function<void(size_t)> body = [&](size_t i) {
    static thread_local std::vector<double> value;
    static thread_local PsddEvidence e;
    e.resize(num_vars());
    for (Var v = 0; v < num_vars(); ++v) {
      e[v] = data[i][v] ? Obs::kTrue : Obs::kFalse;
    }
    ValuePassInto(e, value);
    logp[i] = std::log(value[root_]);
  };
  if (pool != nullptr && pool->num_threads() > 1 && data.size() > 1) {
    TBC_RETURN_IF_ERROR(pool->ParallelFor(0, data.size(), 1, body, &guard));
  } else {
    for (size_t i = 0; i < data.size(); ++i) {
      TBC_RETURN_IF_ERROR(guard.Poll());
      body(i);
    }
  }
  TBC_RETURN_IF_ERROR(guard.Check());
  // Serial index-order reduction: bit-identical across thread counts.
  double ll = 0.0;
  for (double lp : logp) ll += lp;
  return ll;
}

double Psdd::LearnParametersEm(const std::vector<PsddEvidence>& data,
                               const std::vector<double>& weights,
                               double laplace, size_t iterations) {
  double ll = 0.0;
  for (size_t iter = 0; iter < iterations; ++iter) {
    // E-step: expected activation counts under the current parameters.
    for (Node& n : nodes_) {
      n.count_true = 0.0;
      n.count_total = 0.0;
      std::fill(n.element_counts.begin(), n.element_counts.end(), 0.0);
    }
    ll = 0.0;
    for (size_t i = 0; i < data.size(); ++i) {
      const double w = weights.empty() ? 1.0 : weights[i];
      const std::vector<double> value = ValuePass(data[i]);
      const double pe = value[root_];
      TBC_CHECK_MSG(pe > 0.0, "EM example has zero probability");
      ll += w * std::log(pe);
      std::vector<double> deriv(nodes_.size(), 0.0);
      deriv[root_] = 1.0;
      for (PsddId n = nodes_.size(); n-- > 0;) {
        Node& node = nodes_[n];
        if (deriv[n] == 0.0) continue;
        if (node.kind == Kind::kDecision) {
          for (size_t k = 0; k < node.elements.size(); ++k) {
            const Element& el = node.elements[k];
            const double flow =
                deriv[n] * el.theta * value[el.prime] * value[el.sub];
            node.element_counts[k] += w * flow / pe;
            node.count_total += w * flow / pe;
            deriv[el.prime] += deriv[n] * el.theta * value[el.sub];
            deriv[el.sub] += deriv[n] * el.theta * value[el.prime];
          }
        } else if (node.kind == Kind::kTop) {
          const Var x = vtree().var(node.vtree);
          const Obs o = x < data[i].size() ? data[i][x] : Obs::kUnknown;
          const double p_true = o == Obs::kUnknown ? node.theta_true
                                : o == Obs::kTrue  ? node.theta_true
                                                   : 0.0;
          // Expected activations: context flow splits by the posterior of
          // X given the evidence and the context.
          const double context = deriv[n] * value[n] / pe;
          if (value[n] > 0.0) {
            node.count_total += w * context;
            node.count_true += w * context * (p_true / value[n]);
          }
        }
      }
    }
    // M-step: identical normalization to complete-data learning.
    for (Node& n : nodes_) {
      if (n.kind == Kind::kTop) {
        const double denom = n.count_total + 2.0 * laplace;
        n.theta_true = denom > 0.0 ? (n.count_true + laplace) / denom : 0.5;
      } else if (n.kind == Kind::kDecision) {
        const double k = static_cast<double>(n.elements.size());
        const double denom = n.count_total + laplace * k;
        for (size_t j = 0; j < n.elements.size(); ++j) {
          n.elements[j].theta =
              denom > 0.0 ? (n.element_counts[j] + laplace) / denom : 1.0 / k;
        }
      }
    }
    // The next E-step's value passes read the arena: sync per iteration.
    SyncArenaParameters();
  }
#ifdef TBC_VALIDATE
  ValidatePsddOrDie(*this, "Psdd::LearnParametersEm");
#endif
  return ll;
}

std::string Psdd::SerializeParameters() const {
  std::string out = "psdd-params " + std::to_string(nodes_.size()) + "\n";
  char buffer[64];
  for (PsddId n = 0; n < nodes_.size(); ++n) {
    const Node& node = nodes_[n];
    if (node.kind == Kind::kTop) {
      std::snprintf(buffer, sizeof(buffer), "P %u %.17g\n", n, node.theta_true);
      out += buffer;
    } else if (node.kind == Kind::kDecision) {
      out += "P " + std::to_string(n);
      for (const Element& el : node.elements) {
        std::snprintf(buffer, sizeof(buffer), " %.17g", el.theta);
        out += buffer;
      }
      out += "\n";
    }
  }
  return out;
}

Status Psdd::LoadParameters(const std::string& text) {
  size_t line_start = 0;
  bool saw_header = false;
  while (line_start < text.size()) {
    size_t line_end = text.find('\n', line_start);
    if (line_end == std::string::npos) line_end = text.size();
    const std::string line = text.substr(line_start, line_end - line_start);
    line_start = line_end + 1;
    if (line.empty() || line[0] == 'c') continue;
    if (line.rfind("psdd-params", 0) == 0) {
      const size_t count = std::strtoull(line.c_str() + 11, nullptr, 10);
      if (count != nodes_.size()) return Status::Error("node count mismatch");
      saw_header = true;
      continue;
    }
    if (!saw_header) return Status::Error("missing psdd-params header");
    if (line[0] != 'P') return Status::Error("unknown line: " + line);
    char* cursor = nullptr;
    const PsddId n = static_cast<PsddId>(std::strtoul(line.c_str() + 1, &cursor, 10));
    if (n >= nodes_.size()) return Status::Error("node id out of range");
    Node& node = nodes_[n];
    std::vector<double> thetas;
    const char* scan = cursor;
    const char* line_last = line.c_str() + line.size();
    while (true) {
      while (scan < line_last &&
             std::isspace(static_cast<unsigned char>(*scan))) {
        ++scan;
      }
      if (scan == line_last) break;
      // from_chars, not strtod: theta parsing must not depend on the
      // run-time locale's radix character.
      double value = 0.0;
      const auto [next, ec] = std::from_chars(scan, line_last, value,
                                              std::chars_format::general);
      if (ec != std::errc() || next == scan) break;
      thetas.push_back(value);
      scan = next;
    }
    if (node.kind == Kind::kTop) {
      if (thetas.size() != 1 || thetas[0] < 0.0 || thetas[0] > 1.0) {
        return Status::Error("bad Bernoulli parameter");
      }
      node.theta_true = thetas[0];
    } else if (node.kind == Kind::kDecision) {
      if (thetas.size() != node.elements.size()) {
        return Status::Error("element count mismatch");
      }
      double total = 0.0;
      for (double t : thetas) {
        if (t < 0.0) return Status::Error("negative parameter");
        total += t;
      }
      if (std::abs(total - 1.0) > 1e-6) {
        return Status::Error("element parameters do not sum to 1");
      }
      for (size_t i = 0; i < thetas.size(); ++i) node.elements[i].theta = thetas[i];
    } else {
      return Status::Error("parameters on a literal node");
    }
  }
  if (!saw_header) return Status::Error("missing psdd-params header");
  SyncArenaParameters();
#ifdef TBC_VALIDATE
  ValidatePsddOrDie(*this, "Psdd::LoadParameters");
#endif
  return Status::Ok();
}

double Psdd::KlDivergence(const Psdd& other) const {
  TBC_CHECK_MSG(sdd_ == other.sdd_ && nodes_.size() == other.nodes_.size() &&
                    root_ == other.root_,
                "KL divergence requires identical PSDD structure");
  // Context probabilities under *this*: probability each node is reached
  // on a sample's root-to-leaves descent. Parents precede children in id
  // order is false — children precede parents — so iterate in reverse.
  std::vector<double> ctx(nodes_.size(), 0.0);
  ctx[root_] = 1.0;
  double kl = 0.0;
  for (PsddId n = nodes_.size(); n-- > 0;) {
    const Node& p = nodes_[n];
    const Node& q = other.nodes_[n];
    TBC_CHECK_MSG(p.kind == q.kind && p.vtree == q.vtree,
                  "KL divergence requires identical PSDD structure");
    if (ctx[n] == 0.0) continue;
    switch (p.kind) {
      case Kind::kLiteral:
        break;
      case Kind::kTop: {
        auto term = [](double a, double b) {
          return a > 0.0 ? a * std::log(a / b) : 0.0;
        };
        kl += ctx[n] * (term(p.theta_true, q.theta_true) +
                        term(1.0 - p.theta_true, 1.0 - q.theta_true));
        break;
      }
      case Kind::kDecision: {
        TBC_CHECK(p.elements.size() == q.elements.size());
        for (size_t i = 0; i < p.elements.size(); ++i) {
          const double tp = p.elements[i].theta;
          const double tq = q.elements[i].theta;
          TBC_CHECK(p.elements[i].prime == q.elements[i].prime &&
                    p.elements[i].sub == q.elements[i].sub);
          if (tp > 0.0) {
            kl += ctx[n] * tp * std::log(tp / tq);
            ctx[p.elements[i].prime] += ctx[n] * tp;
            ctx[p.elements[i].sub] += ctx[n] * tp;
          }
        }
        break;
      }
    }
  }
  return kl;
}

Psdd Psdd::Multiply(const Psdd& other, double* normalization_constant) const {
  TBC_CHECK_MSG(sdd_ == other.sdd_, "PSDD multiply requires a shared manager");
  Psdd out(*sdd_, sdd_->True());  // seed structure; rebuilt below
  out.nodes_.clear();
  out.build_memo_.Clear();
  out.root_ = kInvalidPsdd;

  struct PairResult {
    PsddId node = kInvalidPsdd;
    double scale = 0.0;
  };
  FlatMap<uint64_t, PairResult> memo;
  memo.reserve(nodes_.size() + other.nodes_.size());
  std::function<PairResult(PsddId, PsddId)> mul = [&](PsddId a,
                                                      PsddId b) -> PairResult {
    const uint64_t key = (static_cast<uint64_t>(a) << 32) | b;
    if (const PairResult* hit = memo.Find(key)) return *hit;
    const Node& na = nodes_[a];
    const Node& nb = other.nodes_[b];
    TBC_CHECK(na.vtree == nb.vtree);
    PairResult r;
    Node node;
    node.vtree = na.vtree;
    if (na.kind == Kind::kLiteral && nb.kind == Kind::kLiteral) {
      if (na.lit_code == nb.lit_code) {
        node.kind = Kind::kLiteral;
        node.lit_code = na.lit_code;
        r.scale = 1.0;
      }  // complementary literals: scale stays 0 (empty product)
    } else if (na.kind == Kind::kLiteral || nb.kind == Kind::kLiteral) {
      const Node& lit_node = na.kind == Kind::kLiteral ? na : nb;
      const Node& top_node = na.kind == Kind::kLiteral ? nb : na;
      const Lit l = Lit::FromCode(lit_node.lit_code);
      r.scale = l.positive() ? top_node.theta_true : 1.0 - top_node.theta_true;
      node.kind = Kind::kLiteral;
      node.lit_code = lit_node.lit_code;
    } else if (na.kind == Kind::kTop && nb.kind == Kind::kTop) {
      const double r1 = na.theta_true * nb.theta_true;
      const double r0 = (1.0 - na.theta_true) * (1.0 - nb.theta_true);
      r.scale = r0 + r1;
      node.kind = Kind::kTop;
      node.theta_true = r.scale > 0.0 ? r1 / r.scale : 0.5;
    } else {
      TBC_CHECK(na.kind == Kind::kDecision && nb.kind == Kind::kDecision);
      node.kind = Kind::kDecision;
      for (const Element& ea : na.elements) {
        for (const Element& eb : nb.elements) {
          const PairResult p = mul(ea.prime, eb.prime);
          if (p.scale == 0.0 || p.node == kInvalidPsdd) continue;
          const PairResult s = mul(ea.sub, eb.sub);
          if (s.scale == 0.0 || s.node == kInvalidPsdd) continue;
          const double raw = ea.theta * eb.theta * p.scale * s.scale;
          if (raw == 0.0) continue;
          node.elements.push_back({p.node, s.node, raw});
          r.scale += raw;
        }
      }
      if (node.elements.empty()) {
        memo.Insert(key, r);
        return r;  // disjoint supports
      }
      for (Element& el : node.elements) el.theta /= r.scale;
      node.element_counts.assign(node.elements.size(), 0.0);
    }
    if (r.scale > 0.0) {
      out.nodes_.push_back(std::move(node));
      r.node = static_cast<PsddId>(out.nodes_.size() - 1);
    }
    memo.Insert(key, r);
    return r;
  };

  const PairResult root = mul(root_, other.root_);
  TBC_CHECK_MSG(root.scale > 0.0, "PSDD product has empty support");
  out.root_ = root.node;
  out.RebuildArena();
  if (normalization_constant != nullptr) *normalization_constant = root.scale;
#ifdef TBC_VALIDATE
  ValidatePsddOrDie(out, "Psdd::Multiply");
#endif
  return out;
}

}  // namespace tbc
