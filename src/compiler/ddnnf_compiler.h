#ifndef TBC_COMPILER_DDNNF_COMPILER_H_
#define TBC_COMPILER_DDNNF_COMPILER_H_

#include <cstdint>

#include "base/guard.h"
#include "base/result.h"
#include "certify/trace.h"
#include "logic/cnf.h"
#include "nnf/nnf.h"

namespace tbc {

/// Options for the top-down compiler; the switches exist so the ablation
/// bench can quantify each technique (DESIGN.md, bench_ablation_compilers).
struct DdnnfOptions {
  /// Partition clauses into variable-disjoint connected components and
  /// compile each independently (the key idea behind c2d/sharpSAT).
  bool use_components = true;
  /// Cache compiled components keyed by their reduced clauses.
  bool use_cache = true;
};

/// Statistics from one compilation.
struct DdnnfStats {
  uint64_t decisions = 0;
  uint64_t cache_hits = 0;
  uint64_t components_split = 0;
};

/// Top-down CNF -> Decision-DNNF compiler.
///
/// Runs exhaustive DPLL — unit propagation, branching, component
/// decomposition, component caching — and keeps the *trace* of the search
/// as a circuit [Huang & Darwiche 2007]: decisions become or-gates
/// (x ∧ hi) ∨ (¬x ∧ lo), component splits become decomposable and-gates.
/// The result is a Decision-DNNF (decomposable + decision, hence
/// deterministic), supporting linear-time SAT, #SAT and WMC. This is the
/// architecture of c2d, sharpSAT and Dsharp referenced in paper §3.
class DdnnfCompiler {
 public:
  explicit DdnnfCompiler(DdnnfOptions options = {}) : options_(options) {}

  /// Compiles `cnf` into `mgr`; returns the root. Free variables are left
  /// unconstrained (the NNF counting queries apply gap factors). Unbounded:
  /// worst-case exponential time and space.
  NnfId Compile(const Cnf& cnf, NnfManager& mgr);

  /// Resource-governed compilation: decisions, created circuit nodes and
  /// wall-clock are charged against `guard`. On a trip, returns the typed
  /// refusal (kDeadlineExceeded / kBudgetExceeded / kCancelled); `mgr` stays
  /// valid but may contain partial garbage nodes (callers that care should
  /// compile into a scratch manager).
  Result<NnfId> CompileBounded(const Cnf& cnf, NnfManager& mgr, Guard& guard);

  const DdnnfStats& stats() const { return stats_; }

#if TBC_CERTIFY_TRACE_ON
  /// Attaches a derivation-trace sink (borrowed; nullptr detaches). While
  /// attached, each CompileBounded clears and refills it with the search
  /// tree — decisions, component splits, BCP conflicts — in the form the
  /// certificate checker replays (certify/checker.h). Only available when
  /// the library is built with TBC_CERTIFY_TRACE=ON.
  void set_trace(DdnnfTrace* trace) { trace_ = trace; }
#endif

 private:
  DdnnfOptions options_;
  DdnnfStats stats_;
#if TBC_CERTIFY_TRACE_ON
  DdnnfTrace* trace_ = nullptr;
#endif
};

}  // namespace tbc

#endif  // TBC_COMPILER_DDNNF_COMPILER_H_
