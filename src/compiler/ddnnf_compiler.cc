#include "compiler/ddnnf_compiler.h"

#include <string>
#include <utility>
#include <vector>

#include "base/check.h"
#include "base/flat_table.h"
#include "base/observability.h"
#include "compiler/subproblem.h"

#ifdef TBC_VALIDATE
#include "analysis/validate.h"
#endif

namespace tbc {

namespace {

using compiler_internal::BcpOutcome;
using compiler_internal::CacheKey;
using compiler_internal::Canonicalize;
using compiler_internal::Clauses;
using compiler_internal::ConditionClauses;
using compiler_internal::PickBranchVar;
using compiler_internal::Propagate;
using compiler_internal::SplitComponents;

class Compilation {
 public:
  Compilation(const DdnnfOptions& options, NnfManager& mgr, DdnnfStats& stats,
              Guard& guard)
      : options_(options), mgr_(mgr), stats_(stats), guard_(guard) {}

  Result<NnfId> CompileClauses(Clauses clauses) {
    // No Canonicalize here: BCP closure and the component partition are
    // insensitive to clause order and duplicates, and CompileComponent
    // canonicalizes before keying the cache, so the result is identical.
    std::vector<Lit> implied;
    Clauses remaining;
    if (Propagate(std::move(clauses), &implied, &remaining) ==
        BcpOutcome::kConflict) {
      return mgr_.False();
    }
    std::vector<NnfId> conjuncts;
    for (Lit l : implied) conjuncts.push_back(mgr_.Literal(l));
    if (!remaining.empty()) {
      if (options_.use_components) {
        std::vector<Clauses> components = SplitComponents(std::move(remaining));
        if (components.size() > 1) {
          ++stats_.components_split;
          TBC_COUNT("ddnnf.components_split");
        }
        for (Clauses& comp : components) {
          TBC_ASSIGN_OR_RETURN(const NnfId sub, CompileComponent(std::move(comp)));
          conjuncts.push_back(sub);
        }
      } else {
        TBC_ASSIGN_OR_RETURN(const NnfId sub,
                             CompileComponent(std::move(remaining)));
        conjuncts.push_back(sub);
      }
    }
    return mgr_.And(std::move(conjuncts));
  }

 private:
  // Compiles a single component (no unit clauses after propagation).
  Result<NnfId> CompileComponent(Clauses clauses) {
    Canonicalize(clauses);
    std::string key;
    if (options_.use_cache) {
      // Probe with a reusable buffer; only a miss pays for an owned copy
      // (the copy must survive the recursion below, which reuses probe_).
      compiler_internal::CacheKeyInto(clauses, &probe_);
      if (const NnfId* hit = cache_.Find(probe_)) {
        ++stats_.cache_hits;
        TBC_COUNT("ddnnf.cache_hits");
        return *hit;
      }
      TBC_COUNT("ddnnf.cache_misses");
      key = probe_;
    }
    ++stats_.decisions;
    TBC_COUNT("ddnnf.decisions");
    // One decision = one created decision node (plus the two literal
    // nodes): charge both budgets here, at the head of the exponential
    // recursion, so a trip surfaces within one decision's work.
    TBC_RETURN_IF_ERROR(guard_.ChargeDecision());
    TBC_RETURN_IF_ERROR(guard_.ChargeNodes(1));
    const Var v = PickBranchVar(clauses);
    TBC_DCHECK(v != kInvalidVar);
    TBC_ASSIGN_OR_RETURN(const NnfId hi,
                         CompileClauses(ConditionClauses(clauses, Pos(v))));
    TBC_ASSIGN_OR_RETURN(const NnfId lo,
                         CompileClauses(ConditionClauses(clauses, Neg(v))));
    const NnfId result = mgr_.Decision(v, hi, lo);
    if (options_.use_cache) cache_.Insert(key, result);
    return result;
  }

  const DdnnfOptions& options_;
  NnfManager& mgr_;
  DdnnfStats& stats_;
  Guard& guard_;
  FlatMap<std::string, NnfId> cache_;
  std::string probe_;
};

}  // namespace

NnfId DdnnfCompiler::Compile(const Cnf& cnf, NnfManager& mgr) {
  // The unlimited guard never trips, so the bounded path cannot refuse.
  return CompileBounded(cnf, mgr, Guard::Unlimited()).value();
}

Result<NnfId> DdnnfCompiler::CompileBounded(const Cnf& cnf, NnfManager& mgr,
                                            Guard& guard) {
  TBC_SPAN("ddnnf.compile");
  stats_ = DdnnfStats();
  TBC_RETURN_IF_ERROR(guard.Check());
  Clauses clauses(cnf.clauses().begin(), cnf.clauses().end());
  compiler_internal::SortEachClause(clauses);  // invariant for Canonicalize
  Compilation run(options_, mgr, stats_, guard);
  Result<NnfId> root = run.CompileClauses(std::move(clauses));
#ifdef TBC_VALIDATE
  if (root.ok()) {
    ValidateNnfOrDie(mgr, *root, NnfDialect::kDecisionDnnf, cnf.num_vars(),
                     "DdnnfCompiler::CompileBounded");
  }
#endif
  return root;
}

}  // namespace tbc
