#include "compiler/ddnnf_compiler.h"

#include <string>
#include <utility>
#include <vector>

#include "base/check.h"
#include "base/flat_table.h"
#include "base/observability.h"
#include "compiler/subproblem.h"

#ifdef TBC_VALIDATE
#include "analysis/validate.h"
#endif
#ifdef TBC_CERTIFY
#include "certify/emit.h"
#endif

namespace tbc {

namespace {

using compiler_internal::BcpOutcome;
using compiler_internal::CacheKey;
using compiler_internal::Canonicalize;
using compiler_internal::Clauses;
using compiler_internal::ConditionClauses;
using compiler_internal::PickBranchVar;
using compiler_internal::Propagate;
using compiler_internal::SplitComponents;

class Compilation {
 public:
  Compilation(const DdnnfOptions& options, NnfManager& mgr, DdnnfStats& stats,
              Guard& guard)
      : options_(options), mgr_(mgr), stats_(stats), guard_(guard) {}

#if TBC_CERTIFY_TRACE_ON
  void set_trace(DdnnfTrace* trace) { trace_ = trace; }
#endif

  // When tracing, `branch` (non-null iff a trace is attached) receives this
  // subproblem's derivation: the BCP conflict, or the result node plus the
  // component records it conjoins.
  Result<NnfId> CompileClauses(Clauses clauses
#if TBC_CERTIFY_TRACE_ON
                               ,
                               CertBranch* branch = nullptr
#endif
  ) {
    // No Canonicalize here: BCP closure and the component partition are
    // insensitive to clause order and duplicates, and CompileComponent
    // canonicalizes before keying the cache, so the result is identical.
    std::vector<Lit> implied;
    Clauses remaining;
    if (Propagate(std::move(clauses), &implied, &remaining) ==
        BcpOutcome::kConflict) {
#if TBC_CERTIFY_TRACE_ON
      if (branch != nullptr) branch->conflict = true;
#endif
      return mgr_.False();
    }
    std::vector<NnfId> conjuncts;
    for (Lit l : implied) conjuncts.push_back(mgr_.Literal(l));
    if (!remaining.empty()) {
      if (options_.use_components) {
        std::vector<Clauses> components = SplitComponents(std::move(remaining));
        if (components.size() > 1) {
          ++stats_.components_split;
          TBC_COUNT("ddnnf.components_split");
        }
        for (Clauses& comp : components) {
#if TBC_CERTIFY_TRACE_ON
          uint32_t comp_index = 0;
          TBC_ASSIGN_OR_RETURN(
              const NnfId sub,
              CompileComponent(std::move(comp),
                               branch != nullptr ? &comp_index : nullptr));
          if (branch != nullptr) branch->comps.push_back(comp_index);
#else
          TBC_ASSIGN_OR_RETURN(const NnfId sub, CompileComponent(std::move(comp)));
#endif
          conjuncts.push_back(sub);
        }
      } else {
#if TBC_CERTIFY_TRACE_ON
        uint32_t comp_index = 0;
        TBC_ASSIGN_OR_RETURN(
            const NnfId sub,
            CompileComponent(std::move(remaining),
                             branch != nullptr ? &comp_index : nullptr));
        if (branch != nullptr) branch->comps.push_back(comp_index);
#else
        TBC_ASSIGN_OR_RETURN(const NnfId sub,
                             CompileComponent(std::move(remaining)));
#endif
        conjuncts.push_back(sub);
      }
    }
    const NnfId result = mgr_.And(std::move(conjuncts));
#if TBC_CERTIFY_TRACE_ON
    if (branch != nullptr) branch->node = result;
#endif
    return result;
  }

 private:
  // Compiles a single component (no unit clauses after propagation). When
  // tracing, `comp_out` receives the index of this component's CertComp
  // record (a cache hit re-references the original record).
  Result<NnfId> CompileComponent(Clauses clauses
#if TBC_CERTIFY_TRACE_ON
                                 ,
                                 uint32_t* comp_out = nullptr
#endif
  ) {
    Canonicalize(clauses);
    std::string key;
    if (options_.use_cache) {
      // Probe with a reusable buffer; only a miss pays for an owned copy
      // (the copy must survive the recursion below, which reuses probe_).
      compiler_internal::CacheKeyInto(clauses, &probe_);
      if (const NnfId* hit = cache_.Find(probe_)) {
        ++stats_.cache_hits;
        TBC_COUNT("ddnnf.cache_hits");
#if TBC_CERTIFY_TRACE_ON
        if (comp_out != nullptr) {
          const uint32_t* comp_hit = comp_cache_.Find(probe_);
          TBC_DCHECK(comp_hit != nullptr);
          *comp_out = *comp_hit;
        }
#endif
        return *hit;
      }
      TBC_COUNT("ddnnf.cache_misses");
      key = probe_;
    }
    ++stats_.decisions;
    TBC_COUNT("ddnnf.decisions");
    // One decision = one created decision node (plus the two literal
    // nodes): charge both budgets here, at the head of the exponential
    // recursion, so a trip surfaces within one decision's work.
    TBC_RETURN_IF_ERROR(guard_.ChargeDecision());
    TBC_RETURN_IF_ERROR(guard_.ChargeNodes(1));
    const Var v = PickBranchVar(clauses);
    TBC_DCHECK(v != kInvalidVar);
#if TBC_CERTIFY_TRACE_ON
    CertComp comp;
    comp.decision = v;
    TBC_ASSIGN_OR_RETURN(
        const NnfId hi,
        CompileClauses(ConditionClauses(clauses, Pos(v)),
                       comp_out != nullptr ? &comp.hi : nullptr));
    TBC_ASSIGN_OR_RETURN(
        const NnfId lo,
        CompileClauses(ConditionClauses(clauses, Neg(v)),
                       comp_out != nullptr ? &comp.lo : nullptr));
#else
    TBC_ASSIGN_OR_RETURN(const NnfId hi,
                         CompileClauses(ConditionClauses(clauses, Pos(v))));
    TBC_ASSIGN_OR_RETURN(const NnfId lo,
                         CompileClauses(ConditionClauses(clauses, Neg(v))));
#endif
    const NnfId result = mgr_.Decision(v, hi, lo);
#if TBC_CERTIFY_TRACE_ON
    if (comp_out != nullptr) {
      comp.node = result;
      *comp_out = static_cast<uint32_t>(trace_->comps.size());
      trace_->comps.push_back(std::move(comp));
      if (options_.use_cache) comp_cache_.Insert(key, *comp_out);
    }
#endif
    if (options_.use_cache) cache_.Insert(key, result);
    return result;
  }

  const DdnnfOptions& options_;
  NnfManager& mgr_;
  DdnnfStats& stats_;
  Guard& guard_;
  FlatMap<std::string, NnfId> cache_;
  std::string probe_;
#if TBC_CERTIFY_TRACE_ON
  DdnnfTrace* trace_ = nullptr;
  FlatMap<std::string, uint32_t> comp_cache_;  // cache_'s keys -> comp index
#endif
};

}  // namespace

NnfId DdnnfCompiler::Compile(const Cnf& cnf, NnfManager& mgr) {
  // The unlimited guard never trips, so the bounded path cannot refuse.
  return CompileBounded(cnf, mgr, Guard::Unlimited()).value();
}

Result<NnfId> DdnnfCompiler::CompileBounded(const Cnf& cnf, NnfManager& mgr,
                                            Guard& guard) {
  TBC_SPAN("ddnnf.compile");
  stats_ = DdnnfStats();
  TBC_RETURN_IF_ERROR(guard.Check());
  Clauses clauses(cnf.clauses().begin(), cnf.clauses().end());
  compiler_internal::SortEachClause(clauses);  // invariant for Canonicalize
  Compilation run(options_, mgr, stats_, guard);
#if TBC_CERTIFY_TRACE_ON
#ifdef TBC_CERTIFY
  // Certify-every-compile mode: record a trace even when the caller did not
  // attach one, so the checker replays the search instead of re-solving.
  DdnnfTrace certify_trace;
  DdnnfTrace* trace = trace_ != nullptr ? trace_ : &certify_trace;
#else
  DdnnfTrace* trace = trace_;
#endif
  if (trace != nullptr) {
    trace->Clear();
    run.set_trace(trace);
  }
  Result<NnfId> root = run.CompileClauses(
      std::move(clauses), trace != nullptr ? &trace->top : nullptr);
#else
  Result<NnfId> root = run.CompileClauses(std::move(clauses));
#endif
#ifdef TBC_VALIDATE
  if (root.ok()) {
    ValidateNnfOrDie(mgr, *root, NnfDialect::kDecisionDnnf, cnf.num_vars(),
                     "DdnnfCompiler::CompileBounded");
  }
#endif
#ifdef TBC_CERTIFY
  if (root.ok()) {
    CertifyDdnnfOrDie(cnf, mgr, *root, trace,
                      "DdnnfCompiler::CompileBounded");
  }
#endif
  return root;
}

}  // namespace tbc
