#include "compiler/model_counter.h"

#include <string>
#include <unordered_map>

#include "base/check.h"
#include "base/flat_table.h"
#include "base/logspace.h"
#include "base/observability.h"
#include "compiler/subproblem.h"

namespace tbc {

namespace {

using compiler_internal::BcpOutcome;
using compiler_internal::CacheKey;
using compiler_internal::Canonicalize;
using compiler_internal::Clauses;
using compiler_internal::ConditionClauses;
using compiler_internal::CountVars;
using compiler_internal::PickBranchVar;
using compiler_internal::Propagate;
using compiler_internal::SplitComponents;

// Exact counting: Count(clauses) is the model count over exactly the
// variables appearing in `clauses`. Free variables that drop out along the
// way are re-multiplied by the caller via 2^gap.
class CountRun {
 public:
  CountRun(ModelCounter::Stats& stats, Guard& guard)
      : stats_(stats), guard_(guard) {}

  Result<BigUint> CountClauses(Clauses clauses) {
    Canonicalize(clauses);
    const size_t vars_before = CountVars(clauses);
    std::vector<Lit> implied;
    Clauses remaining;
    if (Propagate(std::move(clauses), &implied, &remaining) ==
        BcpOutcome::kConflict) {
      return BigUint(0);
    }
    // Variables fixed by propagation contribute factor 1; variables that
    // vanished entirely (satisfied clauses) are free.
    const size_t vars_after = CountVars(remaining);
    const unsigned freed = static_cast<unsigned>(vars_before - implied.size() -
                                                 vars_after);
    BigUint result = BigUint::PowerOfTwo(freed);
    for (Clauses& comp : SplitComponents(std::move(remaining))) {
      TBC_ASSIGN_OR_RETURN(const BigUint sub, CountComponent(std::move(comp)));
      result *= sub;
    }
    return result;
  }

 private:
  Result<BigUint> CountComponent(Clauses clauses) {
    Canonicalize(clauses);
    const std::string key = CacheKey(clauses);
    if (const BigUint* hit = cache_.Find(key)) {
      ++stats_.cache_hits;
      TBC_COUNT("counter.cache_hits");
      return *hit;
    }
    TBC_COUNT("counter.cache_misses");
    ++stats_.decisions;
    TBC_COUNT("counter.decisions");
    // Each decision adds one cache entry: charge it as a node so memory
    // budgets bound the cache, and the decision so search budgets bound
    // the exhaustive DPLL itself.
    TBC_RETURN_IF_ERROR(guard_.ChargeDecision());
    TBC_RETURN_IF_ERROR(guard_.ChargeNodes(1));
    const Var v = PickBranchVar(clauses);
    TBC_DCHECK(v != kInvalidVar);
    const size_t nv = CountVars(clauses);
    BigUint total(0);
    for (bool sign : {false, true}) {
      Clauses sub = ConditionClauses(clauses, Lit(v, sign));
      const size_t sub_vars = CountVars(sub);
      TBC_ASSIGN_OR_RETURN(BigUint c, CountClauses(std::move(sub)));
      // The branch fixes v; variables of the component absent from the
      // subproblem are free.
      c *= BigUint::PowerOfTwo(static_cast<unsigned>(nv - 1 - sub_vars));
      total += c;
    }
    cache_.Insert(key, total);
    return total;
  }

  ModelCounter::Stats& stats_;
  Guard& guard_;
  FlatMap<std::string, BigUint> cache_;
};

// Weighted variant; identical structure with per-literal weights. All
// accumulation — including the component cache — is in ScaledDouble
// (base/logspace.h): a chain of a few thousand 1e-3 weights produces
// intermediates around 1e-6000, which plain double flushes to 0.0 and the
// cache would then serve as a *wrong* 0.0 to every isomorphic subproblem.
// The explicit exponent makes those intermediates exact; the public API
// converts back to double only at the very end.
class WmcRun {
 public:
  WmcRun(const WeightMap& weights, ModelCounter::Stats& stats, Guard& guard)
      : weights_(weights), stats_(stats), guard_(guard) {}

  Result<ScaledDouble> WmcClauses(Clauses clauses) {
    Canonicalize(clauses);
    std::unordered_map<Var, int> seen_before;
    for (const auto& c : clauses) {
      for (Lit l : c) seen_before[l.var()] = 1;
    }
    std::vector<Lit> implied;
    Clauses remaining;
    if (Propagate(std::move(clauses), &implied, &remaining) ==
        BcpOutcome::kConflict) {
      return ScaledDouble::Zero();
    }
    ScaledDouble result = ScaledDouble::One();
    for (Lit l : implied) {
      result *= ScaledDouble::FromDouble(weights_[l]);
      seen_before.erase(l.var());
    }
    for (const auto& c : remaining) {
      for (Lit l : c) seen_before.erase(l.var());
    }
    // Variables that vanished are free: factor (W(x)+W(¬x)).
    for (const auto& [v, unused] : seen_before) {
      result *= ScaledDouble::FromDouble(weights_[Pos(v)] + weights_[Neg(v)]);
    }
    // Long implied-literal chains are where naive products die first.
    NoteIfRescued(result);
    for (Clauses& comp : SplitComponents(std::move(remaining))) {
      TBC_ASSIGN_OR_RETURN(const ScaledDouble sub,
                           WmcComponent(std::move(comp)));
      result *= sub;
    }
    NoteIfRescued(result);
    return result;
  }

 private:
  /// A nonzero value outside the normal double range is exactly what the
  /// pre-log-space accumulator destroyed; count each sighting.
  void NoteIfRescued(const ScaledDouble& v) {
    if (!v.IsZero() && !v.FitsDouble()) {
      ++stats_.underflow_rescues;
      TBC_COUNT("counter.wmc.rescues");
    }
  }

  Result<ScaledDouble> WmcComponent(Clauses clauses) {
    Canonicalize(clauses);
    const std::string key = CacheKey(clauses);
    if (const ScaledDouble* hit = cache_.Find(key)) {
      ++stats_.cache_hits;
      TBC_COUNT("counter.cache_hits");
      return *hit;
    }
    TBC_COUNT("counter.cache_misses");
    ++stats_.decisions;
    TBC_COUNT("counter.decisions");
    TBC_RETURN_IF_ERROR(guard_.ChargeDecision());
    TBC_RETURN_IF_ERROR(guard_.ChargeNodes(1));
    const Var v = PickBranchVar(clauses);
    TBC_DCHECK(v != kInvalidVar);
    std::unordered_map<Var, int> comp_vars;
    for (const auto& c : clauses) {
      for (Lit l : c) comp_vars[l.var()] = 1;
    }
    ScaledDouble total = ScaledDouble::Zero();
    for (bool sign : {false, true}) {
      const Lit branch(v, sign);
      Clauses sub = ConditionClauses(clauses, branch);
      TBC_ASSIGN_OR_RETURN(const ScaledDouble sub_wmc, WmcClauses(sub));
      ScaledDouble w = ScaledDouble::FromDouble(weights_[branch]) * sub_wmc;
      // Component variables absent from the subproblem are free.
      std::unordered_map<Var, int> sub_vars;
      for (const auto& c : sub) {
        for (Lit l : c) sub_vars[l.var()] = 1;
      }
      for (const auto& [u, unused] : comp_vars) {
        if (u != v && sub_vars.find(u) == sub_vars.end()) {
          w *= ScaledDouble::FromDouble(weights_[Pos(u)] + weights_[Neg(u)]);
        }
      }
      total += w;
    }
    NoteIfRescued(total);
    cache_.Insert(key, total);
    return total;
  }

  const WeightMap& weights_;
  ModelCounter::Stats& stats_;
  Guard& guard_;
  FlatMap<std::string, ScaledDouble> cache_;
};

}  // namespace

BigUint ModelCounter::Count(const Cnf& cnf) {
  return CountBounded(cnf, Guard::Unlimited()).value();
}

double ModelCounter::Wmc(const Cnf& cnf, const WeightMap& weights) {
  return WmcBounded(cnf, weights, Guard::Unlimited()).value();
}

Result<BigUint> ModelCounter::CountBounded(const Cnf& cnf, Guard& guard) {
  TBC_SPAN("counter.count");
  stats_ = Stats();
  TBC_RETURN_IF_ERROR(guard.Check());
  Clauses clauses(cnf.clauses().begin(), cnf.clauses().end());
  compiler_internal::SortEachClause(clauses);  // invariant for Canonicalize
  const size_t mentioned = CountVars(clauses);
  CountRun run(stats_, guard);
  TBC_ASSIGN_OR_RETURN(const BigUint c, run.CountClauses(std::move(clauses)));
  return c * BigUint::PowerOfTwo(static_cast<unsigned>(cnf.num_vars() - mentioned));
}

Result<double> ModelCounter::WmcBounded(const Cnf& cnf, const WeightMap& weights,
                                        Guard& guard) {
  TBC_SPAN("counter.wmc");
  stats_ = Stats();
  TBC_RETURN_IF_ERROR(guard.Check());
  Clauses clauses(cnf.clauses().begin(), cnf.clauses().end());
  compiler_internal::SortEachClause(clauses);  // invariant for Canonicalize
  std::unordered_map<Var, int> mentioned;
  for (const auto& c : clauses) {
    for (Lit l : c) mentioned[l.var()] = 1;
  }
  WmcRun run(weights, stats_, guard);
  TBC_ASSIGN_OR_RETURN(ScaledDouble w, run.WmcClauses(std::move(clauses)));
  for (Var v = 0; v < cnf.num_vars(); ++v) {
    if (mentioned.find(v) == mentioned.end()) {
      w *= ScaledDouble::FromDouble(weights[Pos(v)] + weights[Neg(v)]);
    }
  }
  if (!w.IsZero() && !w.FitsDouble()) {
    // The final answer itself is not double-representable; ToDouble()
    // saturates (0.0 / inf) as the best the public double API can do.
    ++stats_.underflow_rescues;
    TBC_COUNT("counter.wmc.rescues");
  }
  return w.ToDouble();
}

}  // namespace tbc
