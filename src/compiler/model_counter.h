#ifndef TBC_COMPILER_MODEL_COUNTER_H_
#define TBC_COMPILER_MODEL_COUNTER_H_

#include "base/bigint.h"
#include "base/guard.h"
#include "base/result.h"
#include "logic/cnf.h"

namespace tbc {

/// Exact #SAT / WMC by exhaustive DPLL with component caching — the
/// sharpSAT architecture (paper §2.1, footnote 3). Shares its search
/// skeleton with DdnnfCompiler: keeping the trace of this search yields a
/// Decision-DNNF [Huang & Darwiche 2007], which is exactly what
/// DdnnfCompiler does. This direct counter skips circuit construction.
class ModelCounter {
 public:
  struct Stats {
    uint64_t decisions = 0;
    uint64_t cache_hits = 0;
    /// Times a nonzero intermediate WMC value left the normal double
    /// range and was carried by the log-space accumulator instead of
    /// being flushed to 0.0 (see base/logspace.h).
    uint64_t underflow_rescues = 0;
  };

  /// Exact model count over cnf.num_vars() variables. Unbounded.
  BigUint Count(const Cnf& cnf);

  /// Exact weighted model count (weights sized to cnf.num_vars()).
  /// Unbounded.
  ///
  /// Accumulation is log-space (ScaledDouble: mantissa + explicit
  /// power-of-two exponent), so intermediate products below DBL_MIN are
  /// carried exactly instead of flushing to 0.0; the double returned is
  /// the correctly rounded final value whenever it is representable.
  /// While every intermediate fits in a normal double the result is
  /// bit-identical to the historical plain-double accumulation.
  double Wmc(const Cnf& cnf, const WeightMap& weights);

  /// Resource-governed variants: decisions, cache entries (as nodes) and
  /// wall-clock are charged against `guard`; a trip returns the typed
  /// refusal instead of an answer.
  Result<BigUint> CountBounded(const Cnf& cnf, Guard& guard);
  Result<double> WmcBounded(const Cnf& cnf, const WeightMap& weights,
                            Guard& guard);

  const Stats& stats() const { return stats_; }

 private:
  Stats stats_;
};

}  // namespace tbc

#endif  // TBC_COMPILER_MODEL_COUNTER_H_
