#ifndef TBC_COMPILER_SUBPROBLEM_H_
#define TBC_COMPILER_SUBPROBLEM_H_

#include <algorithm>
#include <string>
#include <vector>

#include "base/check.h"
#include "base/scratch.h"
#include "logic/lit.h"

namespace tbc::compiler_internal {

/// A subproblem of exhaustive DPLL: a set of reduced clauses (no satisfied
/// clauses, no false literals). Shared by the Decision-DNNF compiler and
/// the model counter — the paper's point that a model counter's trace *is*
/// a d-DNNF [Huang & Darwiche 2007] shows up here as the two using the
/// same search skeleton.
using Clauses = std::vector<std::vector<Lit>>;

/// Establishes the sorted-clause invariant on fresh input. Every transform
/// below (Propagate, ConditionClauses, SplitComponents) only deletes
/// literals or moves whole clauses, so per-clause sortedness is preserved
/// down the entire DPLL recursion and never needs re-establishing.
inline void SortEachClause(Clauses& clauses) {
  for (auto& c : clauses) std::sort(c.begin(), c.end());
}

/// Canonicalizes a clause set whose clauses are each already sorted: orders
/// the clause list and drops duplicates. (Re-sorting every tiny clause at
/// every DPLL node dominated the compile profile; the invariant makes it a
/// one-time cost.)
inline void Canonicalize(Clauses& clauses) {
#ifndef NDEBUG
  for (const auto& c : clauses) {
    TBC_DCHECK(std::is_sorted(c.begin(), c.end()));
  }
#endif
  std::sort(clauses.begin(), clauses.end());
  clauses.erase(std::unique(clauses.begin(), clauses.end()), clauses.end());
}

/// Serializes canonical clauses into `key` (reused buffer: cache probes on
/// the hot DPLL path allocate nothing on a hit).
///
/// The encoding is length-prefixed — uint32 literal count, then the
/// literal codes — which is injective for every clause set: a decoder
/// always knows where each clause ends. The previous scheme terminated
/// clauses with the sentinel 0xFFFFFFFF, which is itself a valid Lit code
/// (the negative literal of var 2^31 - 1), so clause sets containing that
/// literal could collide and the component cache would serve a wrong
/// count. Pinned by CacheKeyIsInjectiveOnSentinelLiteral in
/// compiler_test.
inline void CacheKeyInto(const Clauses& clauses, std::string* key) {
  key->clear();
  key->reserve(clauses.size() * 12);
  for (const auto& c : clauses) {
    const uint32_t len = static_cast<uint32_t>(c.size());
    key->append(reinterpret_cast<const char*>(&len), sizeof(len));
    for (Lit l : c) {
      const uint32_t code = l.code();
      key->append(reinterpret_cast<const char*>(&code), sizeof(code));
    }
  }
}

inline std::string CacheKey(const Clauses& clauses) {
  std::string key;
  CacheKeyInto(clauses, &key);
  return key;
}

enum class BcpOutcome { kOk, kConflict };

/// Exhaustive unit propagation: consumes unit clauses into `implied`,
/// reduces the rest into `remaining`.
inline BcpOutcome Propagate(Clauses clauses, std::vector<Lit>* implied,
                            Clauses* remaining) {
  implied->clear();
  // Propagation runs once per DPLL node; the epoch-stamped scratch turns
  // the per-call assignment map into two array probes. Scratch use is
  // strictly within this call, so recursion-level reuse is safe.
  static thread_local EpochMap value;
  value.Clear();
  bool changed = true;
  while (changed) {
    changed = false;
    Clauses next;
    next.reserve(clauses.size());
    for (auto& c : clauses) {
      // Scan first: clauses untouched by the current assignment (the bulk
      // of every pass) move through without rebuilding.
      bool satisfied = false;
      bool shrinks = false;
      for (Lit l : c) {
        if (!value.Has(l.var())) continue;
        if ((value.Get(l.var()) != 0) == l.positive()) {
          satisfied = true;
          break;
        }
        shrinks = true;
      }
      if (satisfied) continue;
      std::vector<Lit> reduced;
      if (shrinks) {
        reduced.reserve(c.size());
        for (Lit l : c) {
          if (!value.Has(l.var())) reduced.push_back(l);
        }
      } else {
        reduced = std::move(c);
      }
      if (reduced.empty()) return BcpOutcome::kConflict;
      if (reduced.size() == 1) {
        const Lit u = reduced[0];
        if (!value.Has(u.var())) {
          value.Set(u.var(), u.positive() ? 1 : 0);
          implied->push_back(u);
          changed = true;
        }
        continue;
      }
      next.push_back(std::move(reduced));
    }
    clauses = std::move(next);
  }
  *remaining = std::move(clauses);
  return BcpOutcome::kOk;
}

/// Splits clauses into variable-connected components (union-find on vars).
/// Takes the clause list by value and moves each clause into its component;
/// the single-component case (the common one) moves the whole list through.
inline std::vector<Clauses> SplitComponents(Clauses clauses) {
  static thread_local EpochMap parent;      // var -> union-find parent var
  static thread_local EpochMap comp_index;  // root var -> component index
  parent.Clear();
  comp_index.Clear();
  auto find = [](Var v) -> Var {
    if (!parent.Has(v)) {
      parent.Set(v, v);
      return v;
    }
    Var root = v;
    while (parent.Get(root) != root) root = parent.Get(root);
    while (parent.Get(v) != root) {  // path compression
      const Var next = parent.Get(v);
      parent.Set(v, root);
      v = next;
    }
    return root;
  };
  for (const auto& c : clauses) {
    for (size_t i = 1; i < c.size(); ++i) {
      const Var ra = find(c[0].var());
      const Var rb = find(c[i].var());
      if (ra != rb) parent.Set(ra, rb);
    }
  }
  size_t num_roots = 0;
  for (const auto& c : clauses) {
    const Var root = find(c[0].var());
    if (!comp_index.Has(root)) {
      comp_index.Set(root, static_cast<uint32_t>(num_roots++));
    }
  }
  std::vector<Clauses> components;
  if (num_roots <= 1) {
    if (!clauses.empty()) components.push_back(std::move(clauses));
    return components;
  }
  components.resize(num_roots);
  for (auto& c : clauses) {
    components[comp_index.Get(find(c[0].var()))].push_back(std::move(c));
  }
  return components;
}

/// Most frequently occurring variable (ties broken by smaller index so the
/// search is deterministic).
inline Var PickBranchVar(const Clauses& clauses) {
  static thread_local EpochMap occurrences;
  occurrences.Clear();
  for (const auto& c : clauses) {
    for (Lit l : c) {
      const Var v = l.var();
      occurrences.Set(v, occurrences.Has(v) ? occurrences.Get(v) + 1 : 1);
    }
  }
  Var best = kInvalidVar;
  size_t best_count = 0;
  for (const Var v : occurrences.touched()) {
    const size_t count = occurrences.Get(v);
    if (count > best_count || (count == best_count && v < best)) {
      best = v;
      best_count = count;
    }
  }
  return best;
}

/// Conditions clauses on a literal (no propagation). Scans each clause
/// first so satisfied clauses allocate nothing and untouched clauses (the
/// bulk) copy wholesale instead of literal-by-literal.
inline Clauses ConditionClauses(const Clauses& clauses, Lit l) {
  Clauses out;
  out.reserve(clauses.size());
  for (const auto& c : clauses) {
    bool satisfied = false;
    bool shrinks = false;
    for (Lit x : c) {
      if (x == l) {
        satisfied = true;
        break;
      }
      if (x == ~l) shrinks = true;
    }
    if (satisfied) continue;
    if (!shrinks) {
      out.push_back(c);
      continue;
    }
    std::vector<Lit> reduced;
    reduced.reserve(c.size() - 1);
    for (Lit x : c) {
      if (x != ~l) reduced.push_back(x);
    }
    out.push_back(std::move(reduced));
  }
  return out;
}

/// Number of distinct variables appearing in the clauses.
inline size_t CountVars(const Clauses& clauses) {
  static thread_local EpochMap vars;
  vars.Clear();
  for (const auto& c : clauses) {
    for (Lit l : c) vars.Set(l.var(), 1);
  }
  return vars.touched().size();
}

}  // namespace tbc::compiler_internal

#endif  // TBC_COMPILER_SUBPROBLEM_H_
