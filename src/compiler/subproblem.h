#ifndef TBC_COMPILER_SUBPROBLEM_H_
#define TBC_COMPILER_SUBPROBLEM_H_

#include <algorithm>
#include <functional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "logic/lit.h"

namespace tbc::compiler_internal {

/// A subproblem of exhaustive DPLL: a set of reduced clauses (no satisfied
/// clauses, no false literals). Shared by the Decision-DNNF compiler and
/// the model counter — the paper's point that a model counter's trace *is*
/// a d-DNNF [Huang & Darwiche 2007] shows up here as the two using the
/// same search skeleton.
using Clauses = std::vector<std::vector<Lit>>;

inline void Canonicalize(Clauses& clauses) {
  for (auto& c : clauses) std::sort(c.begin(), c.end());
  std::sort(clauses.begin(), clauses.end());
  clauses.erase(std::unique(clauses.begin(), clauses.end()), clauses.end());
}

inline std::string CacheKey(const Clauses& clauses) {
  std::string key;
  key.reserve(clauses.size() * 8);
  for (const auto& c : clauses) {
    for (Lit l : c) {
      const uint32_t code = l.code();
      key.append(reinterpret_cast<const char*>(&code), sizeof(code));
    }
    const uint32_t sep = static_cast<uint32_t>(-1);
    key.append(reinterpret_cast<const char*>(&sep), sizeof(sep));
  }
  return key;
}

enum class BcpOutcome { kOk, kConflict };

/// Exhaustive unit propagation: consumes unit clauses into `implied`,
/// reduces the rest into `remaining`.
inline BcpOutcome Propagate(Clauses clauses, std::vector<Lit>* implied,
                            Clauses* remaining) {
  implied->clear();
  std::unordered_map<Var, bool> value;
  bool changed = true;
  while (changed) {
    changed = false;
    Clauses next;
    next.reserve(clauses.size());
    for (auto& c : clauses) {
      std::vector<Lit> reduced;
      bool satisfied = false;
      for (Lit l : c) {
        auto it = value.find(l.var());
        if (it == value.end()) {
          reduced.push_back(l);
        } else if (it->second == l.positive()) {
          satisfied = true;
          break;
        }
      }
      if (satisfied) continue;
      if (reduced.empty()) return BcpOutcome::kConflict;
      if (reduced.size() == 1) {
        const Lit u = reduced[0];
        if (value.find(u.var()) == value.end()) {
          value[u.var()] = u.positive();
          implied->push_back(u);
          changed = true;
        }
        continue;
      }
      next.push_back(std::move(reduced));
    }
    clauses = std::move(next);
  }
  *remaining = std::move(clauses);
  return BcpOutcome::kOk;
}

/// Splits clauses into variable-connected components (union-find on vars).
inline std::vector<Clauses> SplitComponents(const Clauses& clauses) {
  std::unordered_map<Var, Var> parent;
  std::function<Var(Var)> find = [&](Var v) -> Var {
    auto it = parent.find(v);
    if (it == parent.end() || it->second == v) {
      parent[v] = v;
      return v;
    }
    return parent[v] = find(it->second);
  };
  for (const auto& c : clauses) {
    for (size_t i = 1; i < c.size(); ++i) {
      parent[find(c[0].var())] = find(c[i].var());
    }
  }
  std::unordered_map<Var, size_t> comp_index;
  std::vector<Clauses> components;
  for (const auto& c : clauses) {
    const Var root = find(c[0].var());
    auto it = comp_index.find(root);
    if (it == comp_index.end()) {
      it = comp_index.emplace(root, components.size()).first;
      components.emplace_back();
    }
    components[it->second].push_back(c);
  }
  return components;
}

/// Most frequently occurring variable (ties broken by smaller index so the
/// search is deterministic).
inline Var PickBranchVar(const Clauses& clauses) {
  std::unordered_map<Var, size_t> occurrences;
  for (const auto& c : clauses) {
    for (Lit l : c) ++occurrences[l.var()];
  }
  Var best = kInvalidVar;
  size_t best_count = 0;
  for (const auto& [v, count] : occurrences) {
    if (count > best_count || (count == best_count && v < best)) {
      best = v;
      best_count = count;
    }
  }
  return best;
}

/// Conditions clauses on a literal (no propagation).
inline Clauses ConditionClauses(const Clauses& clauses, Lit l) {
  Clauses out;
  out.reserve(clauses.size());
  for (const auto& c : clauses) {
    std::vector<Lit> reduced;
    bool satisfied = false;
    for (Lit x : c) {
      if (x == l) {
        satisfied = true;
        break;
      }
      if (x != ~l) reduced.push_back(x);
    }
    if (!satisfied) out.push_back(std::move(reduced));
  }
  return out;
}

/// Number of distinct variables appearing in the clauses.
inline size_t CountVars(const Clauses& clauses) {
  std::unordered_set<Var> vars;
  for (const auto& c : clauses) {
    for (Lit l : c) vars.insert(l.var());
  }
  return vars.size();
}

}  // namespace tbc::compiler_internal

#endif  // TBC_COMPILER_SUBPROBLEM_H_
