#include "nnf/properties.h"

#include "base/check.h"

namespace tbc {

namespace {

// Conjunction of (x ∨ ¬x) for every variable in `missing` with `node`.
NnfId AttachMissing(NnfManager& mgr, NnfId node, const std::vector<Var>& missing) {
  if (missing.empty()) return node;
  std::vector<NnfId> parts = {node};
  for (Var v : missing) {
    parts.push_back(mgr.Or(mgr.Literal(Pos(v)), mgr.Literal(Neg(v))));
  }
  return mgr.And(std::move(parts));
}

std::vector<Var> MissingVars(const std::vector<uint64_t>& big,
                             const std::vector<uint64_t>& small) {
  std::vector<Var> out;
  for (size_t w = 0; w < big.size(); ++w) {
    uint64_t diff = big[w] & ~(w < small.size() ? small[w] : 0);
    while (diff != 0) {
      const int bit = __builtin_ctzll(diff);
      out.push_back(static_cast<Var>(64 * w + bit));
      diff &= diff - 1;
    }
  }
  return out;
}

}  // namespace

bool IsDecomposable(NnfManager& mgr, NnfId root) {
  mgr.VarSet(root);  // populate caches bottom-up
  for (NnfId n : mgr.TopologicalOrder(root)) {
    if (mgr.kind(n) != NnfManager::Kind::kAnd) continue;
    const auto& kids = mgr.children(n);
    // Accumulate union; any overlap along the way violates decomposability.
    std::vector<uint64_t> seen(mgr.VarSet(n).size(), 0);
    for (NnfId c : kids) {
      const std::vector<uint64_t>& cs = mgr.VarSet(c);
      for (size_t w = 0; w < cs.size(); ++w) {
        if ((seen[w] & cs[w]) != 0) return false;
        seen[w] |= cs[w];
      }
    }
  }
  return true;
}

bool IsSmooth(NnfManager& mgr, NnfId root) {
  mgr.VarSet(root);
  for (NnfId n : mgr.TopologicalOrder(root)) {
    if (mgr.kind(n) != NnfManager::Kind::kOr) continue;
    const auto& kids = mgr.children(n);
    for (size_t i = 1; i < kids.size(); ++i) {
      if (mgr.VarSet(kids[i]) != mgr.VarSet(kids[0])) return false;
    }
  }
  return true;
}

bool IsDeterministicExhaustive(NnfManager& mgr, NnfId root, size_t num_vars) {
  TBC_CHECK_MSG(num_vars <= 22, "exhaustive determinism check limited to 22 vars");
  const std::vector<NnfId> order = mgr.TopologicalOrder(root);
  std::vector<int8_t> value(mgr.num_nodes(), 0);
  Assignment a(num_vars, false);
  const uint64_t total = 1ull << num_vars;
  for (uint64_t bits = 0; bits < total; ++bits) {
    for (size_t v = 0; v < num_vars; ++v) a[v] = (bits >> v) & 1u;
    for (NnfId n : order) {
      switch (mgr.kind(n)) {
        case NnfManager::Kind::kFalse:
          value[n] = 0;
          break;
        case NnfManager::Kind::kTrue:
          value[n] = 1;
          break;
        case NnfManager::Kind::kLiteral:
          value[n] = Eval(mgr.lit(n), a) ? 1 : 0;
          break;
        case NnfManager::Kind::kAnd: {
          int8_t v = 1;
          for (NnfId c : mgr.children(n)) v = static_cast<int8_t>(v & value[c]);
          value[n] = v;
          break;
        }
        case NnfManager::Kind::kOr: {
          int high = 0;
          for (NnfId c : mgr.children(n)) high += value[c];
          if (high > 1) return false;
          value[n] = high > 0 ? 1 : 0;
          break;
        }
      }
    }
  }
  return true;
}

bool IsDecision(NnfManager& mgr, NnfId root) {
  for (NnfId n : mgr.TopologicalOrder(root)) {
    if (mgr.kind(n) != NnfManager::Kind::kOr) continue;
    const auto& kids = mgr.children(n);
    if (kids.size() > 2) return false;
    // Each input must be a literal or an and-gate containing a literal of a
    // common variable, positive in one input and negative in the other.
    auto decision_lit = [&](NnfId c) -> Lit {
      if (mgr.kind(c) == NnfManager::Kind::kLiteral) return mgr.lit(c);
      if (mgr.kind(c) == NnfManager::Kind::kAnd) {
        for (NnfId g : mgr.children(c)) {
          if (mgr.kind(g) == NnfManager::Kind::kLiteral) return mgr.lit(g);
        }
      }
      return Lit();
    };
    if (kids.size() == 1) continue;
    Lit l0 = decision_lit(kids[0]);
    Lit l1 = decision_lit(kids[1]);
    bool ok = false;
    if (l0.valid() && l1.valid()) {
      // Some variable must appear as a literal in both, with opposite signs.
      // (decision_lit returns the first literal; check all pairs instead.)
      std::vector<Lit> lits0, lits1;
      auto collect = [&](NnfId c, std::vector<Lit>& out) {
        if (mgr.kind(c) == NnfManager::Kind::kLiteral) out.push_back(mgr.lit(c));
        if (mgr.kind(c) == NnfManager::Kind::kAnd) {
          for (NnfId g : mgr.children(c)) {
            if (mgr.kind(g) == NnfManager::Kind::kLiteral) out.push_back(mgr.lit(g));
          }
        }
      };
      collect(kids[0], lits0);
      collect(kids[1], lits1);
      for (Lit a : lits0) {
        for (Lit b : lits1) {
          if (a == ~b) ok = true;
        }
      }
    }
    if (!ok) return false;
  }
  return true;
}

NnfId Smooth(NnfManager& mgr, NnfId root, size_t num_vars) {
  mgr.VarSet(root);
  // Dense memo indexed by original node id; And/Or below may append nodes,
  // but only pre-existing ids are ever looked up.
  std::vector<NnfId> memo(mgr.num_nodes(), kInvalidNnf);
  for (NnfId n : mgr.TopologicalOrder(root)) {
    switch (mgr.kind(n)) {
      case NnfManager::Kind::kFalse:
      case NnfManager::Kind::kTrue:
      case NnfManager::Kind::kLiteral:
        memo[n] = n;
        break;
      case NnfManager::Kind::kAnd: {
        std::vector<NnfId> kids;
        const std::vector<NnfId> original = mgr.children(n).ToVector();
        for (NnfId c : original) kids.push_back(memo[c]);
        memo[n] = mgr.And(std::move(kids));
        break;
      }
      case NnfManager::Kind::kOr: {
        const std::vector<uint64_t> full = mgr.VarSet(n);  // copy: mgr mutates
        std::vector<NnfId> kids;
        const std::vector<NnfId> original = mgr.children(n).ToVector();
        for (NnfId c : original) {
          const std::vector<Var> missing = MissingVars(full, mgr.VarSet(c));
          kids.push_back(AttachMissing(mgr, memo[c], missing));
        }
        memo[n] = mgr.Or(std::move(kids));
        break;
      }
    }
  }
  NnfId result = memo[root];
  if (num_vars > 0) {
    std::vector<uint64_t> all((num_vars + 63) / 64, 0);
    for (size_t v = 0; v < num_vars; ++v) all[v / 64] |= 1ull << (v % 64);
    result = AttachMissing(mgr, result, MissingVars(all, mgr.VarSet(root)));
  }
  return result;
}

}  // namespace tbc
