#ifndef TBC_NNF_NNF_H_
#define TBC_NNF_NNF_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "base/bigint.h"
#include "base/flat_table.h"
#include "base/levelize.h"
#include "base/span.h"
#include "logic/lit.h"

namespace tbc {

/// Node index within an NnfManager.
using NnfId = uint32_t;
constexpr NnfId kInvalidNnf = static_cast<NnfId>(-1);

/// A read-only NNF node table in CSR (struct-of-arrays) form, typically
/// pointing straight into a memory-mapped circuit store (src/store/).
/// NnfManager::FromMapped() adopts one as its base node store with zero
/// deserialization — queries then read the file's pages directly.
///
/// Contract (the store layer validates all of it before adoption; adopting
/// an unvalidated view is undefined behaviour):
///   - node 0 is ⊥ and node 1 is ⊤;
///   - kinds[n] is a valid Kind; payloads[n] is a literal code with
///     variable < num_vars for kLiteral nodes and 0 otherwise;
///   - child_begin has num_nodes+1 monotone entries with child_begin[0] == 0;
///   - every child id is smaller than its parent's id (the bottom-up
///     invariant Levelize() and TopologicalOrder() rely on);
///   - `owner` keeps the backing memory alive for the manager's lifetime.
struct MappedCircuit {
  const uint8_t* kinds = nullptr;
  const uint32_t* payloads = nullptr;
  const uint64_t* child_begin = nullptr;
  const uint32_t* children = nullptr;
  uint32_t num_nodes = 0;
  size_t num_vars = 0;
  std::shared_ptr<const void> owner;
};

/// A store of circuits in Negation Normal Form (paper §3, Fig 5).
///
/// NNF circuits have and-gates, or-gates, literal inputs and the constants
/// ⊤/⊥; inverters may only feed from variables (i.e. negation appears only
/// at literals). NNF itself is not tractable; tractability comes from the
/// properties a circuit satisfies by construction:
///   - decomposability (DNNF): and-gate inputs share no variables — unlocks
///     linear-time SAT (class NP);
///   - + determinism (d-DNNF): or-gate inputs are pairwise inconsistent —
///     unlocks linear-time (weighted) model counting (class PP);
///   - smoothness: or-gate inputs mention the same variables (enforceable,
///     see Smooth() in nnf/properties.h; the counting queries here handle
///     non-smooth circuits by gap factors instead).
///
/// The manager hash-conses nodes, so circuits are DAGs with sharing. It is
/// the common target language: the top-down compiler emits Decision-DNNF
/// into it, and OBDD/SDD circuits export to it.
class NnfManager {
 public:
  enum class Kind : uint8_t { kFalse, kTrue, kLiteral, kAnd, kOr };

  NnfManager();

  /// Adopts a validated mapped node table as the base store (zero-copy: no
  /// pass over the nodes happens here). The returned manager answers every
  /// query directly over the mapped arrays; lazily built side caches
  /// (varsets, level schedules, count memos) live in anonymous memory as
  /// usual. New nodes can still be created — they append to an overlay
  /// whose ids continue past the mapped range. Overlay interning dedups
  /// only against other overlay nodes (the mapped region is deliberately
  /// never indexed — that would touch every page), so transformations over
  /// a mapped base may duplicate a few base nodes; semantics and
  /// determinism are unaffected.
  static std::unique_ptr<NnfManager> FromMapped(MappedCircuit base);

  /// Number of nodes in the mapped base (0 for ordinary managers).
  uint32_t mapped_nodes() const { return base_.num_nodes; }

  NnfId False() const { return 0; }
  NnfId True() const { return 1; }
  NnfId Literal(Lit l);

  /// And/Or over children. Constants are simplified away; single-child
  /// gates collapse; nested same-kind gates are flattened; children are
  /// deduplicated. Note: `Or(x, ~x)` is NOT simplified to true (it is a
  /// legitimate deterministic or-gate).
  NnfId And(std::vector<NnfId> children);
  NnfId Or(std::vector<NnfId> children);
  NnfId And(NnfId a, NnfId b) { return And(std::vector<NnfId>{a, b}); }
  NnfId Or(NnfId a, NnfId b) { return Or(std::vector<NnfId>{a, b}); }
  NnfId And(Span<const NnfId> children) { return And(children.ToVector()); }
  NnfId Or(Span<const NnfId> children) { return Or(children.ToVector()); }

  /// Decision gate (x ∧ hi) ∨ (¬x ∧ lo): the OBDD multiplexer of Fig 11.
  NnfId Decision(Var v, NnfId hi, NnfId lo);

  Kind kind(NnfId n) const {
    return n < base_.num_nodes ? static_cast<Kind>(base_.kinds[n])
                               : nodes_[n - base_.num_nodes].kind;
  }
  Lit lit(NnfId n) const { return Lit::FromCode(payload(n)); }
  /// Children of `n`. The view stays valid for the manager's lifetime for
  /// mapped-base nodes; for overlay nodes it is invalidated by the next
  /// node creation (copy first when interleaving reads with And/Or).
  Span<const NnfId> children(NnfId n) const {
    if (n < base_.num_nodes) {
      const uint64_t b = base_.child_begin[n];
      return Span<const NnfId>(base_.children + b,
                               static_cast<size_t>(base_.child_begin[n + 1] - b));
    }
    return Span<const NnfId>(nodes_[n - base_.num_nodes].children);
  }

  size_t num_nodes() const { return base_.num_nodes + nodes_.size(); }
  /// Number of variables (max mentioned var + 1).
  size_t num_vars() const { return num_vars_; }

  /// Number of edges in the DAG reachable from `root` (the standard circuit
  /// size measure used by the paper, e.g. the 8.9M figure for Fig 22).
  size_t CircuitSize(NnfId root) const;
  /// Number of nodes reachable from `root`.
  size_t NumNodesBelow(NnfId root) const;

  /// Truth value of the subcircuit under a complete assignment.
  bool Evaluate(NnfId root, const Assignment& assignment) const;

  /// Circuit for root|lit (conditioning): occurrences of lit become ⊤ and
  /// of ~lit become ⊥, then gates simplify. Result is in this manager.
  NnfId Condition(NnfId root, Lit l);

  /// Set of variables in the subcircuit at `root`, as a bitset of
  /// ceil(num_vars/64) words. Computed once per node and cached.
  const std::vector<uint64_t>& VarSet(NnfId root);
  /// Number of distinct variables below `root`.
  size_t NumVarsBelow(NnfId root);

  /// Nodes reachable from root, children before parents.
  std::vector<NnfId> TopologicalOrder(NnfId root) const;

  /// Topological level schedule of the subcircuit at `root`: leaves at
  /// level 0, each gate one level above its deepest input. The evaluation
  /// kernels in nnf/queries.cc walk the schedule's contiguous per-level
  /// ranges with dense rank-indexed value arrays (and, optionally, a
  /// ThreadPool over each level).
  LevelSchedule Schedule(NnfId root) const;

  /// Cached variant of Schedule(). The store is append-only and children
  /// are immutable, so a root's schedule never invalidates; repeated
  /// queries on the same root (the common pattern: compile once, count /
  /// WMC many times) pay the levelization once. The reference stays valid
  /// for the manager's lifetime. Like VarSet(), the first call per root
  /// writes the cache: warm single-threaded before sharing the manager
  /// across lanes.
  const LevelSchedule& ScheduleCached(NnfId root);

  /// Memoized unweighted model-count results (the classic BDD-package
  /// count cache): a circuit's count over a fixed variable universe is a
  /// pure function of the append-only store, so it never invalidates.
  /// Returns nullptr on a miss; ModelCountBounded() populates it. Same
  /// warm-before-sharing contract as VarSet()/ScheduleCached().
  const BigUint* FindModelCount(NnfId root, size_t num_vars) const {
    return count_cache_.Find(CountCacheKey(root, num_vars));
  }
  void StoreModelCount(NnfId root, size_t num_vars, const BigUint& count) {
    count_cache_.Insert(CountCacheKey(root, num_vars), count);
  }

  /// Pre-sizes the unique table for `n` expected nodes.
  void Reserve(size_t n) { index_.Reserve(n); }

 private:
  struct Node {
    Kind kind;
    uint32_t payload = 0;  // literal code for kLiteral
    std::vector<NnfId> children;
  };

  NnfManager(MappedCircuit base, int);  // FromMapped; tag disambiguates

  uint32_t payload(NnfId n) const {
    return n < base_.num_nodes ? base_.payloads[n]
                               : nodes_[n - base_.num_nodes].payload;
  }

  NnfId Intern(Node node);

  /// Mapped base node store; num_nodes == 0 for ordinary managers, in which
  /// case every accessor falls through to the overlay (`nodes_`, indexed
  /// by id - base_.num_nodes).
  MappedCircuit base_;
  std::vector<Node> nodes_;
  UniqueTable index_;
  std::vector<std::vector<uint64_t>> varset_cache_;  // parallel to nodes_
  std::vector<int8_t> varset_ready_;
  static uint64_t CountCacheKey(NnfId root, size_t num_vars) {
    return (uint64_t{root} << 32) | static_cast<uint32_t>(num_vars);
  }

  FlatMap<NnfId, uint32_t> schedule_index_;  // root -> schedules_ slot
  std::vector<std::unique_ptr<LevelSchedule>> schedules_;
  FlatMap<uint64_t, BigUint> count_cache_;
  size_t num_vars_ = 0;
};

}  // namespace tbc

#endif  // TBC_NNF_NNF_H_
