#ifndef TBC_NNF_QUERIES_H_
#define TBC_NNF_QUERIES_H_

#include <functional>
#include <vector>

#include "base/bigint.h"
#include "base/guard.h"
#include "base/random.h"
#include "base/result.h"
#include "base/thread_pool.h"
#include "logic/cnf.h"
#include "nnf/nnf.h"

namespace tbc {

/// Polytime queries on tractable NNF circuits (paper §3).
///
/// Preconditions are by construction, not re-checked: IsSatDnnf requires
/// decomposability; the counting queries require decomposability AND
/// determinism (d-DNNF). None require smoothness — or-gate inputs that miss
/// variables are handled with gap factors, the multiplicative correction
/// 2^(#missing) (or Π(W(x)+W(¬x)) for WMC), which is exactly what explicit
/// smoothing would contribute.

/// Linear-time satisfiability of a DNNF circuit (unlocks class NP): a
/// DNNF is satisfiable iff ⊥ does not propagate to the root.
bool IsSatDnnf(NnfManager& mgr, NnfId root);

/// Exact model count of a d-DNNF over variables 0..num_vars-1 (paper Fig 8;
/// unlocks class PP via MAJSAT). Linear in circuit size.
BigUint ModelCount(NnfManager& mgr, NnfId root, size_t num_vars);

/// Weighted model count with per-literal weights (paper §2.1, WMC).
double Wmc(NnfManager& mgr, NnfId root, const WeightMap& weights);

/// Resource-governed variants of the counting kernels. All three walk the
/// circuit's level schedule over dense rank-indexed arrays; when `pool` is
/// non-null each level's node batch is distributed over its lanes. The
/// per-node recurrences read only completed earlier levels and iterate
/// children in a fixed order, so results are bit-identical to the serial
/// pass at every thread count (the determinism contract of
/// base/thread_pool.h). The guard is polled throughout; on a trip the
/// partial pass is discarded and the guard's typed refusal is returned.
Result<BigUint> ModelCountBounded(NnfManager& mgr, NnfId root, size_t num_vars,
                                  Guard& guard, ThreadPool* pool = nullptr);
Result<double> WmcBounded(NnfManager& mgr, NnfId root, const WeightMap& weights,
                          Guard& guard, ThreadPool* pool = nullptr);

/// All marginal weighted model counts in one bottom-up + top-down pass
/// [Darwiche 2001, 2003]: returns m with m[l.code()] = WMC(Δ ∧ l) for every
/// literal l over 0..num_vars-1. The circuit is smoothed internally.
std::vector<double> MarginalWmc(NnfManager& mgr, NnfId root,
                                const WeightMap& weights);

/// Minimum number of positive literals over models (minimum cardinality);
/// returns SIZE_MAX if unsatisfiable. Variables not mentioned count 0.
size_t MinCardinality(NnfManager& mgr, NnfId root);

/// Most probable explanation on a d-DNNF: the maximizing assignment and its
/// weight, maximizing Π W(literal) over complete assignments consistent
/// with the circuit. Requires satisfiable circuit.
struct MpeResult {
  double weight = 0.0;
  Assignment assignment;
};
MpeResult MaxWmc(NnfManager& mgr, NnfId root, const WeightMap& weights,
                 size_t num_vars);

/// Resource-governed MaxWmc; see the Bounded counting kernels above. The
/// maximizing assignment is bit-identical across thread counts: the upward
/// max pass is order-independent per node and the traceback is serial.
Result<MpeResult> MaxWmcBounded(NnfManager& mgr, NnfId root,
                                const WeightMap& weights, size_t num_vars,
                                Guard& guard, ThreadPool* pool = nullptr);

/// Enumerates all models over 0..num_vars-1 (test oracle; d-DNNF).
void EnumerateModelsDnnf(NnfManager& mgr, NnfId root, size_t num_vars,
                         const std::function<void(const Assignment&)>& on_model);

/// Draws a uniform random model of a satisfiable d-DNNF over variables
/// 0..num_vars-1 (paper §3: "utilization of tractable circuits for uniform
/// sampling" [Sharma et al. 2018]). One counting pass plus one top-down
/// descent choosing or-inputs with probability proportional to their
/// (gap-adjusted) model counts; free variables are fair coin flips.
Assignment SampleModelDnnf(NnfManager& mgr, NnfId root, size_t num_vars,
                           Rng& rng);

/// Clausal entailment (the CE query of the KC map): does the DNNF entail
/// the clause? Decided in linear time by conditioning on the clause's
/// negation and checking satisfiability.
bool EntailsClause(NnfManager& mgr, NnfId root, const Clause& clause);

/// Forgetting (the FO transformation): ∃vars. root, polytime on DNNF —
/// both literals of each forgotten variable are replaced by ⊤, which is
/// sound exactly because and-gates are decomposable. The result is a DNNF
/// (determinism is generally lost).
NnfId Forget(NnfManager& mgr, NnfId root, const std::vector<Var>& vars);

/// Constrained max-sum query:  max_y Σ_z W(y, z)  over models of the
/// circuit, where y ranges over `max_vars` and z over the rest.
///
/// This solves MAP / E-MAJSAT (classes NP^PP) in one linear pass, and is
/// correct when the circuit is structured by a vtree *constrained* for the
/// split z|y (paper Fig 10b, [Oztok, Choi & Darwiche 2016]): every or-gate
/// touching a max variable must be a decision on max variables only (then
/// max over its inputs is exact), and no and-gate may multiply two inputs
/// that both mention max variables mixed with sums in between. Circuits
/// exported from an SDD over Vtree::Constrained(y, z) and then smoothed
/// satisfy this. The circuit MUST be smooth over all num_vars variables
/// (call Smooth() first); this is checked only lightly.
struct MaxSumResult {
  double value = 0.0;
  /// Chosen literals for the max variables.
  std::vector<Lit> max_assignment;
};
MaxSumResult MaxSumWmc(NnfManager& mgr, NnfId root, const WeightMap& weights,
                       const std::vector<Var>& max_vars);

}  // namespace tbc

#endif  // TBC_NNF_QUERIES_H_
