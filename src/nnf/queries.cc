#include "nnf/queries.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>

#include "base/check.h"
#include "nnf/properties.h"

namespace tbc {

namespace {

// Variables present in `big` but not in `small`.
std::vector<Var> MissingVars(const std::vector<uint64_t>& big,
                             const std::vector<uint64_t>& small) {
  std::vector<Var> out;
  for (size_t w = 0; w < big.size(); ++w) {
    uint64_t diff = big[w] & ~(w < small.size() ? small[w] : 0);
    while (diff != 0) {
      out.push_back(static_cast<Var>(64 * w + __builtin_ctzll(diff)));
      diff &= diff - 1;
    }
  }
  return out;
}

size_t PopCount(const std::vector<uint64_t>& set) {
  size_t c = 0;
  for (uint64_t w : set) c += static_cast<size_t>(__builtin_popcountll(w));
  return c;
}

// Indices per chunk claimed off the pool; also the serial poll period.
constexpr size_t kGrain = 64;

// Runs body(i) for i in [begin, end): over the pool's lanes when one is
// given and the range is worth splitting, inline otherwise. Either way the
// guard is polled about once per kGrain indices.
Status ForRange(ThreadPool* pool, Guard& guard, size_t begin, size_t end,
                const std::function<void(size_t)>& body) {
  if (pool != nullptr && pool->num_threads() > 1 && end - begin > kGrain) {
    return pool->ParallelFor(begin, end, kGrain, body, &guard);
  }
  for (size_t i = begin; i < end; ++i) {
    if ((i - begin) % kGrain == 0) TBC_RETURN_IF_ERROR(guard.Poll());
    body(i);
  }
  return Status::Ok();
}

// Warms the manager's varset cache for the whole subcircuit (serially —
// VarSet mutates its cache, so parallel pass bodies may only read it), then
// snapshots the level schedule and per-rank variable counts.
struct EvalPlan {
  // Owned by the manager's schedule cache (valid for its lifetime), so
  // repeated queries on one root levelize once.
  const LevelSchedule* schedule = nullptr;
  std::vector<uint32_t> nvars;  // |VarSet| per rank
};

EvalPlan MakePlan(NnfManager& mgr, NnfId root) {
  mgr.VarSet(root);
  EvalPlan plan;
  plan.schedule = &mgr.ScheduleCached(root);
  plan.nvars.resize(plan.schedule->order.size());
  for (size_t i = 0; i < plan.schedule->order.size(); ++i) {
    plan.nvars[i] = static_cast<uint32_t>(PopCount(mgr.VarSet(plan.schedule->order[i])));
  }
  return plan;
}

}  // namespace

bool IsSatDnnf(NnfManager& mgr, NnfId root) {
  std::vector<int8_t> sat(mgr.num_nodes(), 0);
  for (NnfId n : mgr.TopologicalOrder(root)) {
    switch (mgr.kind(n)) {
      case NnfManager::Kind::kFalse:
        sat[n] = 0;
        break;
      case NnfManager::Kind::kTrue:
      case NnfManager::Kind::kLiteral:
        sat[n] = 1;
        break;
      case NnfManager::Kind::kAnd: {
        int8_t v = 1;
        for (NnfId c : mgr.children(n)) v = static_cast<int8_t>(v & sat[c]);
        sat[n] = v;
        break;
      }
      case NnfManager::Kind::kOr: {
        int8_t v = 0;
        for (NnfId c : mgr.children(n)) v = static_cast<int8_t>(v | sat[c]);
        sat[n] = v;
        break;
      }
    }
  }
  return sat[root] == 1;
}

Result<BigUint> ModelCountBounded(NnfManager& mgr, NnfId root, size_t num_vars,
                                  Guard& guard, ThreadPool* pool) {
  TBC_RETURN_IF_ERROR(guard.Check());
  // The store is append-only, so a root's count over a fixed universe never
  // changes; repeated counts on the same root hit the manager's cache.
  if (const BigUint* hit = mgr.FindModelCount(root, num_vars)) return *hit;
  const EvalPlan plan = MakePlan(mgr, root);
  const LevelSchedule& s = *plan.schedule;
  std::vector<BigUint> count(s.order.size());
  for (size_t l = 0; l < s.num_levels(); ++l) {
    TBC_RETURN_IF_ERROR(ForRange(
        pool, guard, s.level_begin[l], s.level_begin[l + 1], [&](size_t i) {
          const NnfId n = s.order[i];
          switch (mgr.kind(n)) {
            case NnfManager::Kind::kFalse:
              break;  // slots default to 0
            case NnfManager::Kind::kTrue:
            case NnfManager::Kind::kLiteral:
              count[i] = BigUint(1);
              break;
            case NnfManager::Kind::kAnd: {
              BigUint prod(1);
              for (NnfId c : mgr.children(n)) prod *= count[s.rank[c]];
              count[i] = std::move(prod);
              break;
            }
            case NnfManager::Kind::kOr: {
              BigUint sum(0);
              for (NnfId c : mgr.children(n)) {
                // Gap factor: each variable of the gate missing from this
                // input is free, doubling the input's count.
                sum += count[s.rank[c]] *
                       BigUint::PowerOfTwo(plan.nvars[i] - plan.nvars[s.rank[c]]);
              }
              count[i] = std::move(sum);
              break;
            }
          }
        }));
  }
  const size_t root_vars = plan.nvars[s.rank[root]];
  TBC_CHECK_MSG(root_vars <= num_vars, "num_vars smaller than circuit variables");
  BigUint result = count[s.rank[root]] *
                   BigUint::PowerOfTwo(static_cast<unsigned>(num_vars - root_vars));
  mgr.StoreModelCount(root, num_vars, result);
  return result;
}

BigUint ModelCount(NnfManager& mgr, NnfId root, size_t num_vars) {
  return std::move(
      ModelCountBounded(mgr, root, num_vars, Guard::Unlimited()).value());
}

Result<double> WmcBounded(NnfManager& mgr, NnfId root, const WeightMap& weights,
                          Guard& guard, ThreadPool* pool) {
  TBC_RETURN_IF_ERROR(guard.Check());
  const EvalPlan plan = MakePlan(mgr, root);
  const LevelSchedule& s = *plan.schedule;
  auto gap_factor = [&](const std::vector<uint64_t>& big,
                        const std::vector<uint64_t>& small) {
    double f = 1.0;
    for (Var v : MissingVars(big, small)) f *= weights[Pos(v)] + weights[Neg(v)];
    return f;
  };
  std::vector<double> value(s.order.size(), 0.0);
  for (size_t l = 0; l < s.num_levels(); ++l) {
    TBC_RETURN_IF_ERROR(ForRange(
        pool, guard, s.level_begin[l], s.level_begin[l + 1], [&](size_t i) {
          const NnfId n = s.order[i];
          switch (mgr.kind(n)) {
            case NnfManager::Kind::kFalse:
              value[i] = 0.0;
              break;
            case NnfManager::Kind::kTrue:
              value[i] = 1.0;
              break;
            case NnfManager::Kind::kLiteral:
              value[i] = weights[mgr.lit(n)];
              break;
            case NnfManager::Kind::kAnd: {
              double prod = 1.0;
              for (NnfId c : mgr.children(n)) prod *= value[s.rank[c]];
              value[i] = prod;
              break;
            }
            case NnfManager::Kind::kOr: {
              double sum = 0.0;
              for (NnfId c : mgr.children(n)) {
                sum += value[s.rank[c]] * gap_factor(mgr.VarSet(n), mgr.VarSet(c));
              }
              value[i] = sum;
              break;
            }
          }
        }));
  }
  // Variables outside the circuit contribute (W(x)+W(¬x)) each.
  double result = value[s.rank[root]];
  std::vector<uint64_t> all((weights.num_vars() + 63) / 64, 0);
  for (size_t v = 0; v < weights.num_vars(); ++v) all[v / 64] |= 1ull << (v % 64);
  result *= gap_factor(all, mgr.VarSet(root));
  return result;
}

double Wmc(NnfManager& mgr, NnfId root, const WeightMap& weights) {
  return WmcBounded(mgr, root, weights, Guard::Unlimited()).value();
}

std::vector<double> MarginalWmc(NnfManager& mgr, NnfId root,
                                const WeightMap& weights) {
  const size_t num_vars = weights.num_vars();
  const NnfId smooth = Smooth(mgr, root, num_vars);
  const LevelSchedule s = mgr.Schedule(smooth);

  // Upward pass: WMC value of every node.
  std::vector<double> value(s.order.size(), 0.0);
  for (size_t i = 0; i < s.order.size(); ++i) {
    const NnfId n = s.order[i];
    switch (mgr.kind(n)) {
      case NnfManager::Kind::kFalse:
        value[i] = 0.0;
        break;
      case NnfManager::Kind::kTrue:
        value[i] = 1.0;
        break;
      case NnfManager::Kind::kLiteral:
        value[i] = weights[mgr.lit(n)];
        break;
      case NnfManager::Kind::kAnd: {
        double prod = 1.0;
        for (NnfId c : mgr.children(n)) prod *= value[s.rank[c]];
        value[i] = prod;
        break;
      }
      case NnfManager::Kind::kOr: {
        double sum = 0.0;
        for (NnfId c : mgr.children(n)) sum += value[s.rank[c]];
        value[i] = sum;
        break;
      }
    }
  }

  // Downward pass: partial derivatives [Darwiche 2003]. Parents accumulate
  // into shared child slots, so this pass stays serial.
  std::vector<double> deriv(s.order.size(), 0.0);
  deriv[s.rank[smooth]] = 1.0;
  for (size_t i = s.order.size(); i-- > 0;) {
    const NnfId n = s.order[i];
    const double dn = deriv[i];
    if (dn == 0.0) continue;
    if (mgr.kind(n) == NnfManager::Kind::kOr) {
      for (NnfId c : mgr.children(n)) deriv[s.rank[c]] += dn;
    } else if (mgr.kind(n) == NnfManager::Kind::kAnd) {
      // d/dc = dn * Π_{c'≠c} v(c'); handle zero factors explicitly.
      const auto& kids = mgr.children(n);
      size_t zeros = 0;
      double prod_nonzero = 1.0;
      for (NnfId c : kids) {
        if (value[s.rank[c]] == 0.0) {
          ++zeros;
        } else {
          prod_nonzero *= value[s.rank[c]];
        }
      }
      if (zeros == 0) {
        for (NnfId c : kids) deriv[s.rank[c]] += dn * prod_nonzero / value[s.rank[c]];
      } else if (zeros == 1) {
        for (NnfId c : kids) {
          if (value[s.rank[c]] == 0.0) deriv[s.rank[c]] += dn * prod_nonzero;
        }
      }
    }
  }

  std::vector<double> marginal(2 * num_vars, 0.0);
  for (size_t i = 0; i < s.order.size(); ++i) {
    const NnfId n = s.order[i];
    if (mgr.kind(n) == NnfManager::Kind::kLiteral) {
      const Lit l = mgr.lit(n);
      marginal[l.code()] += deriv[i] * weights[l];
    }
  }
  return marginal;
}

size_t MinCardinality(NnfManager& mgr, NnfId root) {
  constexpr size_t kInf = std::numeric_limits<size_t>::max();
  std::vector<size_t> card(mgr.num_nodes(), 0);
  for (NnfId n : mgr.TopologicalOrder(root)) {
    switch (mgr.kind(n)) {
      case NnfManager::Kind::kFalse:
        card[n] = kInf;
        break;
      case NnfManager::Kind::kTrue:
        card[n] = 0;
        break;
      case NnfManager::Kind::kLiteral:
        card[n] = mgr.lit(n).positive() ? 1 : 0;
        break;
      case NnfManager::Kind::kAnd: {
        size_t sum = 0;
        for (NnfId c : mgr.children(n)) {
          if (card[c] == kInf) {
            sum = kInf;
            break;
          }
          sum += card[c];
        }
        card[n] = sum;
        break;
      }
      case NnfManager::Kind::kOr: {
        size_t best = kInf;
        // Missing variables can always be set false (cardinality 0), so no
        // gap correction is needed for minimization.
        for (NnfId c : mgr.children(n)) best = std::min(best, card[c]);
        card[n] = best;
        break;
      }
    }
  }
  return card[root];
}

Result<MpeResult> MaxWmcBounded(NnfManager& mgr, NnfId root,
                                const WeightMap& weights, size_t num_vars,
                                Guard& guard, ThreadPool* pool) {
  TBC_RETURN_IF_ERROR(guard.Check());
  const EvalPlan plan = MakePlan(mgr, root);
  const LevelSchedule& s = *plan.schedule;
  auto best_lit_weight = [&](Var v) {
    return std::max(weights[Pos(v)], weights[Neg(v)]);
  };
  auto gap_max = [&](const std::vector<uint64_t>& big,
                     const std::vector<uint64_t>& small) {
    double f = 1.0;
    for (Var v : MissingVars(big, small)) f *= best_lit_weight(v);
    return f;
  };

  std::vector<double> value(s.order.size(), 0.0);
  for (size_t l = 0; l < s.num_levels(); ++l) {
    TBC_RETURN_IF_ERROR(ForRange(
        pool, guard, s.level_begin[l], s.level_begin[l + 1], [&](size_t i) {
          const NnfId n = s.order[i];
          switch (mgr.kind(n)) {
            case NnfManager::Kind::kFalse:
              value[i] = -1.0;  // sentinel: unsatisfiable branch
              break;
            case NnfManager::Kind::kTrue:
              value[i] = 1.0;
              break;
            case NnfManager::Kind::kLiteral:
              value[i] = weights[mgr.lit(n)];
              break;
            case NnfManager::Kind::kAnd: {
              double prod = 1.0;
              for (NnfId c : mgr.children(n)) {
                if (value[s.rank[c]] < 0.0) {
                  prod = -1.0;
                  break;
                }
                prod *= value[s.rank[c]];
              }
              value[i] = prod;
              break;
            }
            case NnfManager::Kind::kOr: {
              double best = -1.0;
              for (NnfId c : mgr.children(n)) {
                if (value[s.rank[c]] < 0.0) continue;
                best = std::max(best, value[s.rank[c]] *
                                          gap_max(mgr.VarSet(n), mgr.VarSet(c)));
              }
              value[i] = best;
              break;
            }
          }
        }));
  }
  TBC_CHECK_MSG(value[s.rank[root]] >= 0.0, "MaxWmc on unsatisfiable circuit");

  MpeResult result;
  result.assignment.assign(num_vars, false);
  std::vector<int8_t> assigned(num_vars, 0);
  auto set_var = [&](Var v, bool val) {
    result.assignment[v] = val;
    assigned[v] = 1;
  };
  auto set_free_max = [&](const std::vector<Var>& vars) {
    for (Var v : vars) set_var(v, weights[Pos(v)] >= weights[Neg(v)]);
  };

  // Traceback (serial; ties break on child order, independent of threads).
  std::vector<NnfId> stack = {root};
  while (!stack.empty()) {
    const NnfId n = stack.back();
    stack.pop_back();
    switch (mgr.kind(n)) {
      case NnfManager::Kind::kFalse:
      case NnfManager::Kind::kTrue:
        break;
      case NnfManager::Kind::kLiteral:
        set_var(mgr.lit(n).var(), mgr.lit(n).positive());
        break;
      case NnfManager::Kind::kAnd:
        for (NnfId c : mgr.children(n)) stack.push_back(c);
        break;
      case NnfManager::Kind::kOr: {
        NnfId best_child = kInvalidNnf;
        double best = -1.0;
        for (NnfId c : mgr.children(n)) {
          if (value[s.rank[c]] < 0.0) continue;
          const double v =
              value[s.rank[c]] * gap_max(mgr.VarSet(n), mgr.VarSet(c));
          if (v > best) {
            best = v;
            best_child = c;
          }
        }
        TBC_DCHECK(best_child != kInvalidNnf);
        set_free_max(MissingVars(mgr.VarSet(n), mgr.VarSet(best_child)));
        stack.push_back(best_child);
        break;
      }
    }
  }
  // Variables never mentioned along the chosen path.
  std::vector<Var> leftover;
  for (Var v = 0; v < num_vars; ++v) {
    if (!assigned[v]) leftover.push_back(v);
  }
  set_free_max(leftover);

  double w = 1.0;
  for (Var v = 0; v < num_vars; ++v) {
    w *= weights[Lit(v, result.assignment[v])];
  }
  result.weight = w;
  return result;
}

MpeResult MaxWmc(NnfManager& mgr, NnfId root, const WeightMap& weights,
                 size_t num_vars) {
  return std::move(
      MaxWmcBounded(mgr, root, weights, num_vars, Guard::Unlimited()).value());
}

Assignment SampleModelDnnf(NnfManager& mgr, NnfId root, size_t num_vars,
                           Rng& rng) {
  TBC_CHECK_MSG(IsSatDnnf(mgr, root), "cannot sample an unsatisfiable circuit");
  // Counting pass (same recurrence as ModelCount).
  const EvalPlan plan = MakePlan(mgr, root);
  const LevelSchedule& s = *plan.schedule;
  std::vector<BigUint> count(s.order.size());
  for (size_t i = 0; i < s.order.size(); ++i) {
    const NnfId n = s.order[i];
    switch (mgr.kind(n)) {
      case NnfManager::Kind::kFalse:
        break;
      case NnfManager::Kind::kTrue:
      case NnfManager::Kind::kLiteral:
        count[i] = BigUint(1);
        break;
      case NnfManager::Kind::kAnd: {
        BigUint prod(1);
        for (NnfId c : mgr.children(n)) prod *= count[s.rank[c]];
        count[i] = std::move(prod);
        break;
      }
      case NnfManager::Kind::kOr: {
        BigUint sum(0);
        for (NnfId c : mgr.children(n)) {
          sum += count[s.rank[c]] *
                 BigUint::PowerOfTwo(plan.nvars[i] - plan.nvars[s.rank[c]]);
        }
        count[i] = std::move(sum);
        break;
      }
    }
  }

  Assignment x(num_vars, false);
  std::vector<int8_t> assigned(num_vars, 0);
  auto set_free = [&](const std::vector<Var>& vars) {
    for (Var v : vars) {
      x[v] = rng.Flip(0.5);
      assigned[v] = 1;
    }
  };
  // Descent. Branch probabilities use double ratios of the exact counts;
  // the bias is bounded by double rounding (~1e-16 relative).
  std::vector<NnfId> stack = {root};
  while (!stack.empty()) {
    const NnfId n = stack.back();
    stack.pop_back();
    switch (mgr.kind(n)) {
      case NnfManager::Kind::kFalse:
      case NnfManager::Kind::kTrue:
        break;
      case NnfManager::Kind::kLiteral: {
        const Lit l = mgr.lit(n);
        x[l.var()] = l.positive();
        assigned[l.var()] = 1;
        break;
      }
      case NnfManager::Kind::kAnd:
        for (NnfId c : mgr.children(n)) stack.push_back(c);
        break;
      case NnfManager::Kind::kOr: {
        const uint32_t nv = plan.nvars[s.rank[n]];
        double u = rng.Uniform() * count[s.rank[n]].ToDouble();
        NnfId chosen = kInvalidNnf;
        for (NnfId c : mgr.children(n)) {
          const double w =
              count[s.rank[c]].ToDouble() *
              std::ldexp(1.0, static_cast<int>(nv - plan.nvars[s.rank[c]]));
          if (u < w || c == mgr.children(n).back()) {
            chosen = c;
            break;
          }
          u -= w;
        }
        // Pick only children with nonzero count (⊥ children have w = 0 and
        // can only be reached via the fallback; skip them).
        if (count[s.rank[chosen]].IsZero()) {
          for (NnfId c : mgr.children(n)) {
            if (!count[s.rank[c]].IsZero()) chosen = c;
          }
        }
        set_free(MissingVars(mgr.VarSet(n), mgr.VarSet(chosen)));
        stack.push_back(chosen);
        break;
      }
    }
  }
  // Variables outside the circuit.
  std::vector<Var> leftover;
  for (Var v = 0; v < num_vars; ++v) {
    if (!assigned[v]) leftover.push_back(v);
  }
  set_free(leftover);
  return x;
}

bool EntailsClause(NnfManager& mgr, NnfId root, const Clause& clause) {
  // root ⊨ clause  iff  root ∧ ¬clause is unsatisfiable.
  NnfId conditioned = root;
  for (Lit l : clause) conditioned = mgr.Condition(conditioned, ~l);
  return !IsSatDnnf(mgr, conditioned);
}

NnfId Forget(NnfManager& mgr, NnfId root, const std::vector<Var>& vars) {
  std::vector<uint64_t> forget_set((mgr.num_vars() + 63) / 64, 0);
  for (Var v : vars) forget_set[v / 64] |= 1ull << (v % 64);
  // Dense memo indexed by original node id; And/Or below may append nodes,
  // but only pre-existing ids are ever looked up.
  std::vector<NnfId> memo(mgr.num_nodes(), kInvalidNnf);
  for (NnfId n : mgr.TopologicalOrder(root)) {
    NnfId result = kInvalidNnf;
    switch (mgr.kind(n)) {
      case NnfManager::Kind::kFalse:
      case NnfManager::Kind::kTrue:
        result = n;
        break;
      case NnfManager::Kind::kLiteral: {
        const Var v = mgr.lit(n).var();
        const bool forgotten = (forget_set[v / 64] >> (v % 64)) & 1;
        result = forgotten ? mgr.True() : n;
        break;
      }
      case NnfManager::Kind::kAnd:
      case NnfManager::Kind::kOr: {
        const std::vector<NnfId> kids_src = mgr.children(n).ToVector();
        std::vector<NnfId> kids;
        kids.reserve(kids_src.size());
        for (NnfId c : kids_src) kids.push_back(memo[c]);
        result = mgr.kind(n) == NnfManager::Kind::kAnd ? mgr.And(std::move(kids))
                                                       : mgr.Or(std::move(kids));
        break;
      }
    }
    memo[n] = result;
  }
  return memo[root];
}

MaxSumResult MaxSumWmc(NnfManager& mgr, NnfId root, const WeightMap& weights,
                       const std::vector<Var>& max_vars) {
  mgr.VarSet(root);
  std::vector<uint64_t> max_set((mgr.num_vars() + 63) / 64, 0);
  for (Var v : max_vars) max_set[v / 64] |= 1ull << (v % 64);
  auto touches_max = [&](NnfId n) {
    const std::vector<uint64_t>& vs = mgr.VarSet(n);
    for (size_t w = 0; w < vs.size() && w < max_set.size(); ++w) {
      if ((vs[w] & max_set[w]) != 0) return true;
    }
    return false;
  };

  const std::vector<NnfId> order = mgr.TopologicalOrder(root);
  std::vector<double> value(mgr.num_nodes(), 0.0);
  for (NnfId n : order) {
    switch (mgr.kind(n)) {
      case NnfManager::Kind::kFalse:
        value[n] = 0.0;
        break;
      case NnfManager::Kind::kTrue:
        value[n] = 1.0;
        break;
      case NnfManager::Kind::kLiteral:
        value[n] = weights[mgr.lit(n)];
        break;
      case NnfManager::Kind::kAnd: {
        double prod = 1.0;
        for (NnfId c : mgr.children(n)) prod *= value[c];
        value[n] = prod;
        break;
      }
      case NnfManager::Kind::kOr: {
        double best = 0.0;
        if (touches_max(n)) {
          best = -1.0;
          for (NnfId c : mgr.children(n)) best = std::max(best, value[c]);
        } else {
          for (NnfId c : mgr.children(n)) best += value[c];
        }
        value[n] = best;
        break;
      }
    }
  }

  // Traceback: descend argmax branches of max-or gates, collecting max-var
  // literals along the chosen paths.
  MaxSumResult result;
  result.value = value[root];
  std::vector<NnfId> stack = {root};
  std::vector<int8_t> chosen(2 * mgr.num_vars(), 0);
  while (!stack.empty()) {
    const NnfId n = stack.back();
    stack.pop_back();
    if (!touches_max(n)) continue;
    switch (mgr.kind(n)) {
      case NnfManager::Kind::kFalse:
      case NnfManager::Kind::kTrue:
        break;
      case NnfManager::Kind::kLiteral: {
        const Lit l = mgr.lit(n);
        if (!chosen[l.code()]) {
          chosen[l.code()] = 1;
          result.max_assignment.push_back(l);
        }
        break;
      }
      case NnfManager::Kind::kAnd:
        for (NnfId c : mgr.children(n)) stack.push_back(c);
        break;
      case NnfManager::Kind::kOr: {
        NnfId best_child = kInvalidNnf;
        double best = -1.0;
        for (NnfId c : mgr.children(n)) {
          if (value[c] > best) {
            best = value[c];
            best_child = c;
          }
        }
        if (best_child != kInvalidNnf) stack.push_back(best_child);
        break;
      }
    }
  }
  return result;
}

void EnumerateModelsDnnf(NnfManager& mgr, NnfId root, size_t num_vars,
                         const std::function<void(const Assignment&)>& on_model) {
  TBC_CHECK_MSG(num_vars <= 22, "model enumeration oracle limited to 22 vars");
  const std::vector<NnfId> order = mgr.TopologicalOrder(root);
  std::vector<int8_t> value(mgr.num_nodes(), 0);
  Assignment a(num_vars, false);
  const uint64_t total = 1ull << num_vars;
  for (uint64_t bits = 0; bits < total; ++bits) {
    for (size_t v = 0; v < num_vars; ++v) a[v] = (bits >> v) & 1u;
    for (NnfId n : order) {
      switch (mgr.kind(n)) {
        case NnfManager::Kind::kFalse:
          value[n] = 0;
          break;
        case NnfManager::Kind::kTrue:
          value[n] = 1;
          break;
        case NnfManager::Kind::kLiteral:
          value[n] = Eval(mgr.lit(n), a) ? 1 : 0;
          break;
        case NnfManager::Kind::kAnd: {
          int8_t v = 1;
          for (NnfId c : mgr.children(n)) v = static_cast<int8_t>(v & value[c]);
          value[n] = v;
          break;
        }
        case NnfManager::Kind::kOr: {
          int8_t v = 0;
          for (NnfId c : mgr.children(n)) v = static_cast<int8_t>(v | value[c]);
          value[n] = v;
          break;
        }
      }
    }
    if (value[root] == 1) on_model(a);
  }
}

}  // namespace tbc
