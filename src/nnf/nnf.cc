#include "nnf/nnf.h"

#include <algorithm>

#include "base/check.h"
#include "base/hash.h"
#include "base/observability.h"

namespace tbc {

NnfManager::NnfManager() {
  nodes_.push_back({Kind::kFalse, 0, {}});  // id 0
  nodes_.push_back({Kind::kTrue, 0, {}});   // id 1
}

NnfManager::NnfManager(MappedCircuit base, int) : base_(std::move(base)) {
  // The mapped table provides the ⊥/⊤ convention ids itself (validated by
  // the store layer); the overlay starts empty and ids continue past the
  // mapped range.
  num_vars_ = base_.num_vars;
}

std::unique_ptr<NnfManager> NnfManager::FromMapped(MappedCircuit base) {
  TBC_CHECK(base.num_nodes >= 2);
  return std::unique_ptr<NnfManager>(new NnfManager(std::move(base), 0));
}

NnfId NnfManager::Intern(Node node) {
  // Interning dedups against the overlay only: mapped-base nodes are never
  // indexed (see FromMapped). A duplicate of a base node costs one overlay
  // slot, never correctness.
  uint64_t h = HashCombine(0, static_cast<size_t>(node.kind));
  h = HashCombine(h, node.payload);
  for (NnfId c : node.children) h = HashCombine(h, c);
  h = HashU64(h);
  const uint32_t found = index_.Find(h, [&](uint32_t id) {
    const Node& n = nodes_[id - base_.num_nodes];
    return n.kind == node.kind && n.payload == node.payload &&
           n.children == node.children;
  });
  if (found != UniqueTable::kNpos) {
    TBC_COUNT("nnf.unique.hits");
    return found;
  }
  TBC_COUNT("nnf.nodes.created");
  const NnfId id = static_cast<NnfId>(base_.num_nodes + nodes_.size());
  nodes_.push_back(std::move(node));
  index_.Insert(h, id);
  return id;
}

NnfId NnfManager::Literal(Lit l) {
  TBC_DCHECK(l.valid());
  num_vars_ = std::max(num_vars_, static_cast<size_t>(l.var()) + 1);
  return Intern({Kind::kLiteral, l.code(), {}});
}

NnfId NnfManager::And(std::vector<NnfId> children) {
  std::vector<NnfId> kids;
  kids.reserve(children.size());
  for (NnfId c : children) {
    if (c == False()) return False();
    if (c == True()) continue;
    if (kind(c) == Kind::kAnd) {
      for (NnfId g : this->children(c)) kids.push_back(g);
    } else {
      kids.push_back(c);
    }
  }
  std::sort(kids.begin(), kids.end());
  kids.erase(std::unique(kids.begin(), kids.end()), kids.end());
  if (kids.empty()) return True();
  if (kids.size() == 1) return kids[0];
  return Intern({Kind::kAnd, 0, std::move(kids)});
}

NnfId NnfManager::Or(std::vector<NnfId> children) {
  std::vector<NnfId> kids;
  kids.reserve(children.size());
  for (NnfId c : children) {
    if (c == True()) return True();
    if (c == False()) continue;
    if (kind(c) == Kind::kOr) {
      for (NnfId g : this->children(c)) kids.push_back(g);
    } else {
      kids.push_back(c);
    }
  }
  std::sort(kids.begin(), kids.end());
  kids.erase(std::unique(kids.begin(), kids.end()), kids.end());
  if (kids.empty()) return False();
  if (kids.size() == 1) return kids[0];
  return Intern({Kind::kOr, 0, std::move(kids)});
}

NnfId NnfManager::Decision(Var v, NnfId hi, NnfId lo) {
  if (hi == lo) return hi;
  return Or(And(Literal(Pos(v)), hi), And(Literal(Neg(v)), lo));
}

std::vector<NnfId> NnfManager::TopologicalOrder(NnfId root) const {
  // Node ids grow children-before-parents by construction, so collecting
  // the reachable set and sorting by id is a topological order.
  std::vector<NnfId> order;
  std::vector<int8_t> seen(num_nodes(), 0);
  std::vector<NnfId> stack = {root};
  while (!stack.empty()) {
    NnfId cur = stack.back();
    stack.pop_back();
    if (seen[cur]) continue;
    seen[cur] = 1;
    order.push_back(cur);
    for (NnfId c : children(cur)) stack.push_back(c);
  }
  std::sort(order.begin(), order.end());
  return order;
}

LevelSchedule NnfManager::Schedule(NnfId root) const {
  return Levelize(num_nodes(), root, [this](uint32_t n, auto&& visit) {
    for (NnfId c : children(n)) visit(c);
  });
}

const LevelSchedule& NnfManager::ScheduleCached(NnfId root) {
  if (const uint32_t* slot = schedule_index_.Find(root)) {
    return *schedules_[*slot];
  }
  schedules_.push_back(std::make_unique<LevelSchedule>(Schedule(root)));
  schedule_index_.Insert(root, static_cast<uint32_t>(schedules_.size() - 1));
  return *schedules_.back();
}

size_t NnfManager::CircuitSize(NnfId root) const {
  size_t edges = 0;
  for (NnfId n : TopologicalOrder(root)) edges += children(n).size();
  return edges;
}

size_t NnfManager::NumNodesBelow(NnfId root) const {
  return TopologicalOrder(root).size();
}

bool NnfManager::Evaluate(NnfId root, const Assignment& assignment) const {
  std::vector<int8_t> value(num_nodes(), -1);
  for (NnfId n : TopologicalOrder(root)) {
    switch (kind(n)) {
      case Kind::kFalse:
        value[n] = 0;
        break;
      case Kind::kTrue:
        value[n] = 1;
        break;
      case Kind::kLiteral:
        value[n] = Eval(lit(n), assignment) ? 1 : 0;
        break;
      case Kind::kAnd: {
        int8_t v = 1;
        for (NnfId c : children(n)) v = static_cast<int8_t>(v & value[c]);
        value[n] = v;
        break;
      }
      case Kind::kOr: {
        int8_t v = 0;
        for (NnfId c : children(n)) v = static_cast<int8_t>(v | value[c]);
        value[n] = v;
        break;
      }
    }
  }
  return value[root] == 1;
}

NnfId NnfManager::Condition(NnfId root, Lit l) {
  // Dense memo indexed by original node id; And/Or below may append nodes,
  // but only pre-existing ids are ever looked up.
  std::vector<NnfId> memo(num_nodes(), kInvalidNnf);
  const std::vector<NnfId> order = TopologicalOrder(root);
  for (NnfId n : order) {
    const Kind k = kind(n);
    NnfId result = kInvalidNnf;
    switch (k) {
      case Kind::kFalse:
      case Kind::kTrue:
        result = n;
        break;
      case Kind::kLiteral: {
        const Lit x = lit(n);
        result = x == l ? True() : (x == ~l ? False() : n);
        break;
      }
      case Kind::kAnd:
      case Kind::kOr: {
        // Copy: And/Or below may reallocate the overlay under the view.
        const std::vector<NnfId> kids_src = children(n).ToVector();
        std::vector<NnfId> kids;
        kids.reserve(kids_src.size());
        for (NnfId c : kids_src) kids.push_back(memo[c]);
        result = k == Kind::kAnd ? And(std::move(kids)) : Or(std::move(kids));
        break;
      }
    }
    memo[n] = result;
  }
  return memo[root];
}

const std::vector<uint64_t>& NnfManager::VarSet(NnfId root) {
  if (varset_ready_.size() < num_nodes()) {
    varset_ready_.resize(num_nodes(), 0);
    varset_cache_.resize(num_nodes());
  }
  const size_t words = (num_vars_ + 63) / 64;
  if (varset_ready_[root] && varset_cache_[root].size() == words) {
    return varset_cache_[root];
  }
  for (NnfId n : TopologicalOrder(root)) {
    if (varset_ready_[n] && varset_cache_[n].size() == words) continue;
    std::vector<uint64_t> set(words, 0);
    if (kind(n) == Kind::kLiteral) {
      const Var v = lit(n).var();
      set[v / 64] |= 1ull << (v % 64);
    } else {
      for (NnfId c : children(n)) {
        const std::vector<uint64_t>& cs = varset_cache_[c];
        for (size_t w = 0; w < words; ++w) set[w] |= cs[w];
      }
    }
    varset_cache_[n] = std::move(set);
    varset_ready_[n] = 1;
  }
  return varset_cache_[root];
}

size_t NnfManager::NumVarsBelow(NnfId root) {
  size_t count = 0;
  for (uint64_t w : VarSet(root)) count += static_cast<size_t>(__builtin_popcountll(w));
  return count;
}

}  // namespace tbc
