#include "nnf/io.h"

#include <unordered_map>

#include "base/strings.h"

namespace tbc {

std::string WriteNnf(NnfManager& mgr, NnfId root, size_t num_vars) {
  const std::vector<NnfId> order = mgr.TopologicalOrder(root);
  std::unordered_map<NnfId, size_t> line_of;
  size_t num_edges = 0;
  std::string body;
  for (NnfId n : order) {
    const size_t line = line_of.size();
    line_of.emplace(n, line);
    switch (mgr.kind(n)) {
      case NnfManager::Kind::kFalse:
        body += "O 0 0\n";
        break;
      case NnfManager::Kind::kTrue:
        body += "A 0\n";
        break;
      case NnfManager::Kind::kLiteral:
        body += "L " + std::to_string(mgr.lit(n).ToDimacs()) + "\n";
        break;
      case NnfManager::Kind::kAnd: {
        body += "A " + std::to_string(mgr.children(n).size());
        for (NnfId c : mgr.children(n)) {
          body += " " + std::to_string(line_of.at(c));
          ++num_edges;
        }
        body += "\n";
        break;
      }
      case NnfManager::Kind::kOr: {
        body += "O 0 " + std::to_string(mgr.children(n).size());
        for (NnfId c : mgr.children(n)) {
          body += " " + std::to_string(line_of.at(c));
          ++num_edges;
        }
        body += "\n";
        break;
      }
    }
  }
  return "nnf " + std::to_string(order.size()) + " " + std::to_string(num_edges) +
         " " + std::to_string(num_vars) + "\n" + body;
}

Result<NnfId> ReadNnf(NnfManager& mgr, const std::string& text) {
  std::vector<NnfId> node_of_line;
  bool saw_header = false;
  for (const std::string& raw : SplitChar(text, '\n')) {
    std::string_view line = StripWhitespace(raw);
    if (line.empty() || line[0] == 'c') continue;
    std::vector<std::string> tok = SplitWhitespace(line);
    if (tok[0] == "nnf") {
      if (tok.size() < 4) return Status::Error("bad nnf header");
      saw_header = true;
      continue;
    }
    if (!saw_header) return Status::Error("missing nnf header");
    if (tok[0] == "L") {
      if (tok.size() != 2) return Status::Error("bad L line");
      node_of_line.push_back(mgr.Literal(Lit::FromDimacs(std::atoi(tok[1].c_str()))));
    } else if (tok[0] == "A") {
      if (tok.size() < 2) return Status::Error("bad A line");
      const size_t count = std::strtoull(tok[1].c_str(), nullptr, 10);
      if (tok.size() != 2 + count) return Status::Error("bad A arity");
      std::vector<NnfId> kids;
      for (size_t i = 0; i < count; ++i) {
        const size_t ref = std::strtoull(tok[2 + i].c_str(), nullptr, 10);
        if (ref >= node_of_line.size()) return Status::Error("forward reference");
        kids.push_back(node_of_line[ref]);
      }
      node_of_line.push_back(mgr.And(std::move(kids)));
    } else if (tok[0] == "O") {
      if (tok.size() < 3) return Status::Error("bad O line");
      const size_t count = std::strtoull(tok[2].c_str(), nullptr, 10);
      if (tok.size() != 3 + count) return Status::Error("bad O arity");
      std::vector<NnfId> kids;
      for (size_t i = 0; i < count; ++i) {
        const size_t ref = std::strtoull(tok[3 + i].c_str(), nullptr, 10);
        if (ref >= node_of_line.size()) return Status::Error("forward reference");
        kids.push_back(node_of_line[ref]);
      }
      node_of_line.push_back(mgr.Or(std::move(kids)));
    } else {
      return Status::Error("unknown nnf line: " + std::string(line));
    }
  }
  if (node_of_line.empty()) return Status::Error("empty nnf file");
  return node_of_line.back();
}

}  // namespace tbc
