#include "nnf/io.h"

#include <unordered_map>

#include "base/strings.h"

namespace tbc {

std::string WriteNnf(NnfManager& mgr, NnfId root, size_t num_vars) {
  const std::vector<NnfId> order = mgr.TopologicalOrder(root);
  std::unordered_map<NnfId, size_t> line_of;
  size_t num_edges = 0;
  std::string body;
  for (NnfId n : order) {
    const size_t line = line_of.size();
    line_of.emplace(n, line);
    switch (mgr.kind(n)) {
      case NnfManager::Kind::kFalse:
        body += "O 0 0\n";
        break;
      case NnfManager::Kind::kTrue:
        body += "A 0\n";
        break;
      case NnfManager::Kind::kLiteral:
        body += "L " + std::to_string(mgr.lit(n).ToDimacs()) + "\n";
        break;
      case NnfManager::Kind::kAnd: {
        body += "A " + std::to_string(mgr.children(n).size());
        for (NnfId c : mgr.children(n)) {
          body += " " + std::to_string(line_of.at(c));
          ++num_edges;
        }
        body += "\n";
        break;
      }
      case NnfManager::Kind::kOr: {
        body += "O 0 " + std::to_string(mgr.children(n).size());
        for (NnfId c : mgr.children(n)) {
          body += " " + std::to_string(line_of.at(c));
          ++num_edges;
        }
        body += "\n";
        break;
      }
    }
  }
  return "nnf " + std::to_string(order.size()) + " " + std::to_string(num_edges) +
         " " + std::to_string(num_vars) + "\n" + body;
}

namespace {

Status BadLine(size_t line_no, const std::string& what) {
  return Status::InvalidInput("line " + std::to_string(line_no) + ": " + what);
}

// Parses the child references of an A/O line starting at token `first`.
Status ParseChildren(const std::vector<std::string>& tok, size_t first,
                     size_t count, const std::vector<NnfId>& node_of_line,
                     size_t line_no, std::vector<NnfId>* kids) {
  for (size_t i = 0; i < count; ++i) {
    uint64_t ref = 0;
    if (!ParseUint64(tok[first + i], &ref)) {
      return BadLine(line_no, "bad child reference '" + tok[first + i] + "'");
    }
    if (ref >= node_of_line.size()) {
      return BadLine(line_no,
                     "forward or out-of-range reference " + std::to_string(ref));
    }
    kids->push_back(node_of_line[ref]);
  }
  return Status::Ok();
}

}  // namespace

Result<NnfId> ReadNnf(NnfManager& mgr, const std::string& text,
                      size_t* num_vars_out) {
  std::vector<NnfId> node_of_line;
  bool saw_header = false;
  uint64_t decl_nodes = 0;
  uint64_t decl_edges = 0;
  uint64_t decl_vars = 0;
  uint64_t seen_edges = 0;
  size_t line_no = 0;
  for (const std::string& raw : SplitChar(text, '\n')) {
    ++line_no;
    std::string_view line = StripWhitespace(raw);
    if (line.empty() || line[0] == 'c') continue;
    std::vector<std::string> tok = SplitWhitespace(line);
    if (tok[0] == "nnf") {
      if (saw_header) return BadLine(line_no, "duplicate nnf header");
      if (tok.size() != 4 || !ParseUint64(tok[1], &decl_nodes) ||
          !ParseUint64(tok[2], &decl_edges) ||
          !ParseUint64(tok[3], &decl_vars) || decl_vars > (1u << 28)) {
        return BadLine(line_no, "bad nnf header");
      }
      saw_header = true;
      continue;
    }
    if (!saw_header) return BadLine(line_no, "missing nnf header");
    if (node_of_line.size() == decl_nodes) {
      return BadLine(line_no, "more nodes than the header declares");
    }
    if (tok[0] == "L") {
      if (tok.size() != 2) return BadLine(line_no, "bad L line");
      int dimacs = 0;
      if (!ParseInt(tok[1], &dimacs) || dimacs == 0 || dimacs < -(1 << 28) ||
          dimacs > (1 << 28)) {
        return BadLine(line_no, "bad literal '" + tok[1] + "'");
      }
      if (static_cast<uint64_t>(dimacs < 0 ? -dimacs : dimacs) > decl_vars) {
        return BadLine(line_no, "literal '" + tok[1] +
                                    "' outside the declared variable count");
      }
      node_of_line.push_back(mgr.Literal(Lit::FromDimacs(dimacs)));
    } else if (tok[0] == "A") {
      if (tok.size() < 2) return BadLine(line_no, "bad A line");
      uint64_t count = 0;
      if (!ParseUint64(tok[1], &count)) {
        return BadLine(line_no, "bad A arity '" + tok[1] + "'");
      }
      if (tok.size() != 2 + count) {
        return BadLine(line_no, "A arity does not match child count");
      }
      std::vector<NnfId> kids;
      TBC_RETURN_IF_ERROR(
          ParseChildren(tok, 2, count, node_of_line, line_no, &kids));
      seen_edges += count;
      node_of_line.push_back(mgr.And(std::move(kids)));
    } else if (tok[0] == "O") {
      if (tok.size() < 3) return BadLine(line_no, "bad O line");
      // tok[1] is c2d's decision variable (0 = none). It is advisory for
      // evaluation but still part of the format: reject garbage there
      // instead of silently skipping the token.
      uint64_t decision_var = 0;
      if (!ParseUint64(tok[1], &decision_var) || decision_var > decl_vars) {
        return BadLine(line_no,
                       "bad O decision variable '" + tok[1] + "'");
      }
      uint64_t count = 0;
      if (!ParseUint64(tok[2], &count)) {
        return BadLine(line_no, "bad O arity '" + tok[2] + "'");
      }
      if (tok.size() != 3 + count) {
        return BadLine(line_no, "O arity does not match child count");
      }
      std::vector<NnfId> kids;
      TBC_RETURN_IF_ERROR(
          ParseChildren(tok, 3, count, node_of_line, line_no, &kids));
      seen_edges += count;
      node_of_line.push_back(mgr.Or(std::move(kids)));
    } else {
      return BadLine(line_no, "unknown nnf line: " + std::string(line));
    }
  }
  if (node_of_line.empty()) return Status::InvalidInput("empty nnf file");
  if (node_of_line.size() != decl_nodes) {
    // A file cut short still ends in a structurally valid line, and "last
    // line is root" would silently hand back the wrong circuit. The header
    // makes truncation detectable; use it.
    return Status::InvalidInput(
        "node count mismatch: header declares " + std::to_string(decl_nodes) +
        ", body has " + std::to_string(node_of_line.size()));
  }
  if (seen_edges != decl_edges) {
    return Status::InvalidInput(
        "edge count mismatch: header declares " + std::to_string(decl_edges) +
        ", body has " + std::to_string(seen_edges));
  }
  if (num_vars_out != nullptr) *num_vars_out = decl_vars;
  return node_of_line.back();
}

}  // namespace tbc
