#ifndef TBC_NNF_IO_H_
#define TBC_NNF_IO_H_

#include <string>

#include "base/result.h"
#include "nnf/nnf.h"

namespace tbc {

/// Serializes the circuit at `root` in the c2d `.nnf` exchange format:
///   nnf <num_nodes> <num_edges> <num_vars>
///   L <dimacs_lit>            (literal node)
///   A <c> <id...>             (and node with c children)
///   O <j> <c> <id...>         (or node; j = decision variable or 0)
/// Constants are emitted as `A 0` (true) and `O 0 0` (false), as c2d does.
std::string WriteNnf(NnfManager& mgr, NnfId root, size_t num_vars);

/// Parses the c2d `.nnf` format into `mgr`; returns the root node (the
/// last line, as c2d defines it). The header is load-bearing, not
/// decorative: declared node/edge counts must match the body exactly — a
/// truncated file silently changes which line is root, so a count
/// mismatch is a typed error rather than a wrong circuit — literal
/// variables must fall inside the declared variable count, and an O
/// line's decision-variable token must parse (0 = none). `num_vars_out`
/// (optional) receives the declared variable count, which WriteNnf emits
/// but the returned NnfId alone cannot carry — the write/read asymmetry
/// that used to lose it across a round trip.
Result<NnfId> ReadNnf(NnfManager& mgr, const std::string& text,
                      size_t* num_vars_out = nullptr);

}  // namespace tbc

#endif  // TBC_NNF_IO_H_
