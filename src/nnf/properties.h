#ifndef TBC_NNF_PROPERTIES_H_
#define TBC_NNF_PROPERTIES_H_

#include "nnf/nnf.h"

namespace tbc {

/// Checks *decomposability* (paper Fig 6): no two inputs of any and-gate
/// share a variable. Linear in circuit size times varset width.
bool IsDecomposable(NnfManager& mgr, NnfId root);

/// Checks *smoothness*: all inputs of every or-gate mention exactly the
/// same variables.
bool IsSmooth(NnfManager& mgr, NnfId root);

/// Checks *determinism* (paper Fig 7) exhaustively: under every assignment
/// to the first `num_vars` variables, every or-gate has at most one high
/// input. Exponential in num_vars — this is a test oracle (num_vars <= 22).
bool IsDeterministicExhaustive(NnfManager& mgr, NnfId root, size_t num_vars);

/// Checks the *decision* property: every or-gate is a binary multiplexer
/// (x ∧ hi) ∨ (¬x ∧ lo) on some variable x. Decision + decomposability =
/// Decision-DNNF, the language emitted by the top-down compiler.
bool IsDecision(NnfManager& mgr, NnfId root);

/// Returns an equivalent smooth circuit (paper §3): each or-gate input is
/// conjoined with (x ∨ ¬x) gates for its missing variables. If
/// `num_vars > 0`, the root is additionally smoothed over variables
/// 0..num_vars-1. Preserves decomposability and determinism.
NnfId Smooth(NnfManager& mgr, NnfId root, size_t num_vars = 0);

}  // namespace tbc

#endif  // TBC_NNF_PROPERTIES_H_
