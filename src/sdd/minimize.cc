#include "sdd/minimize.h"

#include <functional>
#include <memory>

#include "base/check.h"
#include "base/observability.h"
#include "sdd/compile.h"
#include "sdd/sdd.h"

#ifdef TBC_VALIDATE
#include "analysis/validate.h"
#endif

namespace tbc {

namespace {

// Mutable tree mirror used for surgery.
struct TreeNode {
  Var var = kInvalidVar;
  std::unique_ptr<TreeNode> left, right;
  bool IsLeaf() const { return var != kInvalidVar; }
};

std::unique_ptr<TreeNode> Clone(const Vtree& vt, VtreeId v) {
  auto node = std::make_unique<TreeNode>();
  if (vt.IsLeaf(v)) {
    node->var = vt.var(v);
  } else {
    node->left = Clone(vt, vt.left(v));
    node->right = Clone(vt, vt.right(v));
  }
  return node;
}

// Rebuilds a Vtree from the mutable mirror.
Vtree Rebuild(const TreeNode& root) {
  // Serialize to the file format and parse back — reuses the validated
  // construction path.
  std::string body;
  uint32_t next = 0;
  std::function<uint32_t(const TreeNode&)> emit = [&](const TreeNode& n) -> uint32_t {
    if (n.IsLeaf()) {
      const uint32_t id = next++;
      body += "L " + std::to_string(id) + " " + std::to_string(n.var + 1) + "\n";
      return id;
    }
    const uint32_t l = emit(*n.left);
    const uint32_t r = emit(*n.right);
    const uint32_t id = next++;
    body += "I " + std::to_string(id) + " " + std::to_string(l) + " " +
            std::to_string(r) + "\n";
    return id;
  };
  emit(root);
  auto parsed = Vtree::Parse("vtree " + std::to_string(next) + "\n" + body);
  TBC_CHECK(parsed.ok());
  return std::move(parsed).value();
}

// Finds the mirror node corresponding to a vtree node by in-order position.
TreeNode* FindByPosition(TreeNode* node, uint32_t target, uint32_t& next) {
  if (node->IsLeaf()) {
    return next++ == target ? node : nullptr;
  }
  TreeNode* found = FindByPosition(node->left.get(), target, next);
  if (found != nullptr) return found;
  if (next++ == target) return node;
  return FindByPosition(node->right.get(), target, next);
}

enum class Op { kRotateRight, kRotateLeft, kSwap };

Vtree Apply(const Vtree& vt, VtreeId at, Op op) {
  std::unique_ptr<TreeNode> root = Clone(vt, vt.root());
  uint32_t next = 0;
  TreeNode* node = FindByPosition(root.get(), vt.position(at), next);
  TBC_CHECK(node != nullptr);
  switch (op) {
    case Op::kRotateRight: {
      // (l=(a,b), c) -> (a, (b,c)).
      if (node->IsLeaf() || node->left->IsLeaf()) return vt;
      auto l = std::move(node->left);
      auto a = std::move(l->left);
      auto b = std::move(l->right);
      auto c = std::move(node->right);
      l->left = std::move(b);
      l->right = std::move(c);
      node->left = std::move(a);
      node->right = std::move(l);
      break;
    }
    case Op::kRotateLeft: {
      // (a, r=(b,c)) -> ((a,b), c).
      if (node->IsLeaf() || node->right->IsLeaf()) return vt;
      auto r = std::move(node->right);
      auto a = std::move(node->left);
      auto b = std::move(r->left);
      auto c = std::move(r->right);
      r->left = std::move(a);
      r->right = std::move(b);
      node->left = std::move(r);
      node->right = std::move(c);
      break;
    }
    case Op::kSwap: {
      if (node->IsLeaf()) return vt;
      std::swap(node->left, node->right);
      break;
    }
  }
  return Rebuild(*root);
}

// Bounded recompilation for candidate evaluation: respects the outer
// deadline/cancellation and a node cap. Returns SIZE_MAX (reject) when the
// compile was interrupted.
size_t SddSizeUnderBounded(const Cnf& cnf, const Vtree& vt, Guard& outer,
                           uint64_t node_cap) {
  Budget inner_budget;
  inner_budget.timeout_ms = outer.has_deadline() ? outer.RemainingMs() : 0.0;
  inner_budget.max_nodes = node_cap;
  if (inner_budget.timeout_ms == 0.0 && outer.has_deadline()) return SIZE_MAX;
  Guard inner(inner_budget);
  SddManager mgr(vt);
  mgr.set_guard(&inner);
  const SddId f = CompileCnf(mgr, cnf);
  if (mgr.interrupted() || outer.cancelled()) return static_cast<size_t>(-1);
  return mgr.Size(f) + 1;
}

}  // namespace

Vtree RotateRight(const Vtree& vtree, VtreeId at) {
  return Apply(vtree, at, Op::kRotateRight);
}
Vtree RotateLeft(const Vtree& vtree, VtreeId at) {
  return Apply(vtree, at, Op::kRotateLeft);
}
Vtree SwapChildren(const Vtree& vtree, VtreeId at) {
  return Apply(vtree, at, Op::kSwap);
}

MinimizeResult MinimizeVtree(const Cnf& cnf, const Vtree& initial,
                             size_t budget, uint64_t seed) {
  return MinimizeVtree(cnf, initial, budget, seed, Guard::Unlimited());
}

MinimizeResult MinimizeVtree(const Cnf& cnf, const Vtree& initial,
                             size_t budget, uint64_t seed, Guard& guard) {
  TBC_SPAN("sdd.minimize");
  Rng rng(seed);
  MinimizeResult result;
  result.vtree = initial;
  // The initial compilation runs under the full outer guard (deadline and
  // cancellation, plus any caller-set node budget).
  {
    SddManager mgr(initial);
    mgr.set_guard(&guard);
    const SddId f = CompileCnf(mgr, cnf);
    mgr.set_guard(nullptr);
    if (mgr.interrupted()) {
      result.interrupted = true;
      result.interrupt_status = mgr.interrupt_status();
      return result;
    }
    result.initial_size = mgr.Size(f) + 1;
  }
  result.size = result.initial_size;
  for (size_t i = 0; i < budget; ++i) {
    Status s = guard.Check();
    if (!s.ok()) {
      result.interrupted = true;
      result.interrupt_status = std::move(s);
      break;
    }
    const VtreeId at = static_cast<VtreeId>(rng.Below(result.vtree.num_nodes()));
    const Op op = static_cast<Op>(rng.Below(3));
    Vtree candidate = Apply(result.vtree, at, op);
    // A neighbor larger than the incumbent can never be accepted, so cap
    // its recompilation at a small multiple of the incumbent size. This
    // also keeps one pathological neighbor from eating the whole deadline.
    const uint64_t cap = 4 * static_cast<uint64_t>(result.size) + 256;
    const size_t size = SddSizeUnderBounded(cnf, candidate, guard, cap);
    ++result.iterations;
    TBC_COUNT("sdd.minimize.iterations");
    if (size <= result.size) {  // accept sideways moves to escape plateaus
      if (size < result.size) TBC_COUNT("sdd.minimize.improvements");
      result.size = size;
      result.vtree = std::move(candidate);
    }
  }
#ifdef TBC_VALIDATE
  // Re-verify the winning vtree's circuit (candidates are validated by the
  // guard-free CompileCnf hook; the search above runs guarded and skips it).
  if (!result.interrupted) {
    SddManager check(result.vtree);
    ValidateSddOrDie(check, CompileCnf(check, cnf), "MinimizeVtree");
  }
#elif defined(TBC_CERTIFY)
  // Certify the winning vtree's circuit. (With TBC_VALIDATE on, the
  // recompile above already certifies through CompileCnf's guard-free
  // hook, so this block only exists when that one is compiled out.)
  if (!result.interrupted) {
    SddManager check(result.vtree);
    CompileCnf(check, cnf);
  }
#endif
  return result;
}

}  // namespace tbc
