#include "sdd/minimize.h"

#include <utility>

#include "base/check.h"
#include "base/observability.h"
#include "sdd/compile.h"
#include "sdd/sdd.h"

#ifdef TBC_VALIDATE
#include "analysis/validate.h"
#endif

namespace tbc {

namespace {

// Bounded recompilation for candidate evaluation (recompile oracle path):
// respects the outer deadline/cancellation and a node cap. Returns
// SIZE_MAX (reject) when the compile was interrupted.
size_t SddSizeUnderBounded(const Cnf& cnf, const Vtree& vt, Guard& outer,
                           uint64_t node_cap) {
  Budget inner_budget;
  inner_budget.timeout_ms = outer.has_deadline() ? outer.RemainingMs() : 0.0;
  inner_budget.max_nodes = node_cap;
  if (inner_budget.timeout_ms == 0.0 && outer.has_deadline()) return SIZE_MAX;
  Guard inner(inner_budget);
  SddManager mgr(vt);
  mgr.set_auto_minimize(SddAutoMinimizeOptions{});
  mgr.set_guard(&inner);
  const SddId f = CompileCnf(mgr, cnf);
  if (mgr.interrupted() || outer.cancelled()) return static_cast<size_t>(-1);
  return mgr.Size(f) + 1;
}

}  // namespace

std::optional<Vtree> RotateRight(const Vtree& vtree, VtreeId at) {
  Vtree copy = vtree;
  if (!copy.RotateRightAt(at)) return std::nullopt;
  return copy;
}
std::optional<Vtree> RotateLeft(const Vtree& vtree, VtreeId at) {
  Vtree copy = vtree;
  if (!copy.RotateLeftAt(at)) return std::nullopt;
  return copy;
}
std::optional<Vtree> SwapChildren(const Vtree& vtree, VtreeId at) {
  Vtree copy = vtree;
  if (!copy.SwapChildrenAt(at)) return std::nullopt;
  return copy;
}

SddInPlaceMinimizeResult MinimizeSddInPlace(SddManager& mgr, SddId root,
                                            size_t budget, uint64_t seed) {
  TBC_SPAN("sdd.minimize.inplace");
  SddInPlaceMinimizeResult result;
  result.root = mgr.Resolve(root);
  if (mgr.interrupted()) {
    result.interrupted = true;
    result.interrupt_status = mgr.interrupt_status();
    return result;
  }
  result.initial_size = mgr.Size(result.root);
  result.size = result.initial_size;
  Guard* outer = mgr.guard();
  Rng rng(seed);
  const size_t num_vt = mgr.vtree().num_nodes();
  const auto edit = [&mgr](int op, VtreeId at) {
    switch (op) {
      case 0:
        return mgr.RotateRightInPlace(at);
      case 1:
        return mgr.RotateLeftInPlace(at);
      default:
        return mgr.SwapChildrenInPlace(at);
    }
  };
  for (size_t i = 0; i < budget; ++i) {
    if (outer != nullptr) {
      Status s = outer->Check();
      if (!s.ok()) {
        result.interrupted = true;
        result.interrupt_status = std::move(s);
        break;
      }
    }
    const VtreeId at = static_cast<VtreeId>(rng.Below(num_vt));
    const int op = static_cast<int>(rng.Below(3));
    ++result.iterations;
    TBC_COUNT("sdd.minimize.iterations");
    // Per-edit work cap (Choi & Darwiche's "limited" operations): a
    // fragment rewrite that interns more than a fraction of the incumbent
    // SDD's size is no local move at all — it is a global restructuring
    // priced like a recompile — so it is aborted (and rolled back) early.
    // Empirically the cap can be this tight without changing the best
    // size found: sweeping multipliers from 4x down to 0.25x of the
    // incumbent left every best-size result identical while cutting
    // wall-clock several-fold on root-adjacent rotations. The outer
    // deadline, when there is one, bounds the edit as well.
    Budget inner_budget;
    inner_budget.max_nodes = static_cast<uint64_t>(result.size) + 256;
    if (outer != nullptr && outer->has_deadline()) {
      inner_budget.timeout_ms = outer->RemainingMs();
      if (inner_budget.timeout_ms <= 0.0) {
        // The outer deadline expired between the Check above and here.
        result.interrupted = true;
        result.interrupt_status = Status::DeadlineExceeded(
            "deadline exceeded before in-place edit");
        break;
      }
    }
    Guard inner(inner_budget);
    mgr.set_guard(&inner);
    const SddEditResult er = edit(op, at);
    mgr.set_guard(outer);
    if (er.aborted) {
      ++result.aborted;
      mgr.ClearInterrupt();
      // The inner guard inherits the outer deadline; find out which budget
      // actually tripped.
      if (outer != nullptr) {
        Status s = outer->Check();
        if (!s.ok()) {
          result.interrupted = true;
          result.interrupt_status = std::move(s);
          break;
        }
      }
      continue;
    }
    if (!er.applied) continue;
    ++result.applied;
    root = mgr.Resolve(result.root);
    const size_t size = mgr.Size(root);
#ifdef TBC_VALIDATE
    {
      // Analyzer-clean after every committed edit (guard detached: the
      // validation pass must not charge the search budgets).
      Guard* held = mgr.guard();
      mgr.set_guard(nullptr);
      ValidateSddOrDie(mgr, root, "MinimizeSddInPlace");
      mgr.set_guard(held);
    }
#endif
    if (size <= result.size) {  // accept sideways moves to escape plateaus
      if (size < result.size) TBC_COUNT("sdd.minimize.improvements");
      result.size = size;
      result.root = root;
      continue;
    }
    // Reject: undo via the exact inverse at the same node. The rollback
    // must complete to keep the incumbent, so it runs unguarded; its cost
    // is bounded by the fragment the forward edit just rebuilt.
    mgr.set_guard(nullptr);
    const SddEditResult undo = edit(op == 0 ? 1 : op == 1 ? 0 : 2, at);
    mgr.set_guard(outer);
    TBC_CHECK_MSG(undo.applied, "inverse vtree edit must always apply");
    result.root = mgr.Resolve(result.root);
  }
  return result;
}

MinimizeResult MinimizeVtree(const Cnf& cnf, const Vtree& initial,
                             size_t budget, uint64_t seed) {
  return MinimizeVtree(cnf, initial, budget, seed, Guard::Unlimited());
}

MinimizeResult MinimizeVtree(const Cnf& cnf, const Vtree& initial,
                             size_t budget, uint64_t seed, Guard& guard) {
  TBC_SPAN("sdd.minimize");
  MinimizeResult result;
  result.vtree = initial;
  // Compile once under the full outer guard; every subsequent step is an
  // in-place fragment edit, not a recompilation.
  SddManager mgr(initial);
  // The search drives its own edits; a process-wide auto-minimize default
  // would interleave extra edits and perturb the seeded sequence.
  mgr.set_auto_minimize(SddAutoMinimizeOptions{});
  mgr.set_guard(&guard);
  SddId f = CompileCnf(mgr, cnf);
  if (mgr.interrupted()) {
    result.interrupted = true;
    result.interrupt_status = mgr.interrupt_status();
    return result;
  }
  // The compile leaves every intermediate apply result live, and an edit
  // must rewrite ALL nodes at its vtree label — garbage included. The
  // manager is ours and `f` is the only root, so collect first; edits
  // then scale with the actual SDD instead of the compile's debris.
  f = mgr.GarbageCollect(f);
  const SddInPlaceMinimizeResult r = MinimizeSddInPlace(mgr, f, budget, seed);
  mgr.set_guard(nullptr);
  // Sizes keep the historical "+1" convention of this API (compilation
  // size including the root count, never 0 for a successful compile).
  result.initial_size = r.initial_size + 1;
  result.size = r.size + 1;
  result.iterations = r.iterations;
  result.interrupted = r.interrupted;
  result.interrupt_status = r.interrupt_status;
  // The live SDD is canonical for the manager's current vtree, which the
  // loop invariant keeps equal to the incumbent's vtree.
  result.vtree = mgr.vtree();
#ifdef TBC_VALIDATE
  // Cross-check: recompiling under the winning vtree must reproduce the
  // in-place result (the in-place path preserves canonicity).
  if (!result.interrupted) {
    SddManager check(result.vtree);
    check.set_auto_minimize(SddAutoMinimizeOptions{});
    const SddId g = CompileCnf(check, cnf);
    ValidateSddOrDie(check, g, "MinimizeVtree");
    TBC_CHECK_MSG(check.Size(g) + 1 == result.size,
                  "in-place minimized SDD disagrees with recompilation");
  }
#elif defined(TBC_CERTIFY)
  // Certify the winning vtree's circuit. (With TBC_VALIDATE on, the
  // recompile above already certifies through CompileCnf's guard-free
  // hook, so this block only exists when that one is compiled out.)
  if (!result.interrupted) {
    SddManager check(result.vtree);
    CompileCnf(check, cnf);
  }
#endif
  return result;
}

MinimizeResult MinimizeVtreeByRecompile(const Cnf& cnf, const Vtree& initial,
                                        size_t budget, uint64_t seed,
                                        Guard& guard) {
  TBC_SPAN("sdd.minimize.recompile");
  Rng rng(seed);
  MinimizeResult result;
  result.vtree = initial;
  // The initial compilation runs under the full outer guard (deadline and
  // cancellation, plus any caller-set node budget).
  {
    SddManager mgr(initial);
    mgr.set_auto_minimize(SddAutoMinimizeOptions{});
    mgr.set_guard(&guard);
    const SddId f = CompileCnf(mgr, cnf);
    mgr.set_guard(nullptr);
    if (mgr.interrupted()) {
      result.interrupted = true;
      result.interrupt_status = mgr.interrupt_status();
      return result;
    }
    result.initial_size = mgr.Size(f) + 1;
  }
  result.size = result.initial_size;
  for (size_t i = 0; i < budget; ++i) {
    Status s = guard.Check();
    if (!s.ok()) {
      result.interrupted = true;
      result.interrupt_status = std::move(s);
      break;
    }
    const VtreeId at = static_cast<VtreeId>(rng.Below(result.vtree.num_nodes()));
    const int op = static_cast<int>(rng.Below(3));
    ++result.iterations;
    TBC_COUNT("sdd.minimize.iterations");
    std::optional<Vtree> candidate =
        op == 0   ? RotateRight(result.vtree, at)
        : op == 1 ? RotateLeft(result.vtree, at)
                  : SwapChildren(result.vtree, at);
    if (!candidate.has_value()) continue;  // shape did not permit the move
    // A neighbor larger than the incumbent can never be accepted, so cap
    // its recompilation at a small multiple of the incumbent size. This
    // also keeps one pathological neighbor from eating the whole deadline.
    const uint64_t cap = 4 * static_cast<uint64_t>(result.size) + 256;
    const size_t size = SddSizeUnderBounded(cnf, *candidate, guard, cap);
    if (size <= result.size) {  // accept sideways moves to escape plateaus
      if (size < result.size) TBC_COUNT("sdd.minimize.improvements");
      result.size = size;
      result.vtree = std::move(*candidate);
    }
  }
#ifdef TBC_VALIDATE
  // Re-verify the winning vtree's circuit (candidates are validated by the
  // guard-free CompileCnf hook; the search above runs guarded and skips it).
  if (!result.interrupted) {
    SddManager check(result.vtree);
    ValidateSddOrDie(check, CompileCnf(check, cnf), "MinimizeVtreeByRecompile");
  }
#elif defined(TBC_CERTIFY)
  if (!result.interrupted) {
    SddManager check(result.vtree);
    CompileCnf(check, cnf);
  }
#endif
  return result;
}

}  // namespace tbc
