#include "sdd/io.h"

#include <functional>
#include <unordered_map>

#include "base/strings.h"

namespace tbc {

std::string WriteSdd(const SddManager& mgr, SddId f) {
  std::unordered_map<SddId, uint32_t> file_id;
  std::string body;
  uint32_t next = 0;
  std::function<uint32_t(SddId)> emit = [&](SddId g) -> uint32_t {
    auto it = file_id.find(g);
    if (it != file_id.end()) return it->second;
    uint32_t id;
    if (mgr.IsConstant(g)) {
      id = next++;
      body += std::string(g == mgr.True() ? "T " : "F ") + std::to_string(id) + "\n";
    } else if (mgr.IsLiteral(g)) {
      id = next++;
      body += "L " + std::to_string(id) + " " +
              std::to_string(mgr.vtree().position(mgr.vtree_node(g))) + " " +
              std::to_string(mgr.literal(g).ToDimacs()) + "\n";
    } else {
      std::string elems;
      size_t k = 0;
      for (const auto& [p, s] : mgr.elements(g)) {
        const uint32_t pid = emit(p);
        const uint32_t sid = emit(s);
        elems += " " + std::to_string(pid) + " " + std::to_string(sid);
        ++k;
      }
      id = next++;
      body += "D " + std::to_string(id) + " " +
              std::to_string(mgr.vtree().position(mgr.vtree_node(g))) + " " +
              std::to_string(k) + elems + "\n";
    }
    file_id.emplace(g, id);
    return id;
  };
  emit(f);
  return "sdd " + std::to_string(next) + "\n" + body;
}

Result<SddId> ReadSdd(SddManager& mgr, const std::string& text) {
  // Map in-order vtree positions back to vtree nodes.
  std::unordered_map<uint32_t, VtreeId> vtree_at;
  for (VtreeId v = 0; v < mgr.vtree().num_nodes(); ++v) {
    vtree_at[mgr.vtree().position(v)] = v;
  }
  std::unordered_map<uint32_t, SddId> node_of;
  bool saw_header = false;
  SddId last = kInvalidSdd;
  for (const std::string& raw : SplitChar(text, '\n')) {
    std::string_view line = StripWhitespace(raw);
    if (line.empty() || line[0] == 'c') continue;
    const std::vector<std::string> tok = SplitWhitespace(line);
    if (tok[0] == "sdd") {
      saw_header = true;
      continue;
    }
    if (!saw_header) return Status::Error("missing sdd header");
    if (tok[0] == "F" || tok[0] == "T") {
      if (tok.size() != 2) return Status::Error("bad constant line");
      last = tok[0] == "T" ? mgr.True() : mgr.False();
      node_of[static_cast<uint32_t>(std::stoul(tok[1]))] = last;
    } else if (tok[0] == "L") {
      if (tok.size() != 4) return Status::Error("bad literal line");
      last = mgr.LiteralNode(Lit::FromDimacs(std::atoi(tok[3].c_str())));
      node_of[static_cast<uint32_t>(std::stoul(tok[1]))] = last;
    } else if (tok[0] == "D") {
      if (tok.size() < 4) return Status::Error("bad decision line");
      const uint32_t pos = static_cast<uint32_t>(std::stoul(tok[2]));
      auto vit = vtree_at.find(pos);
      if (vit == vtree_at.end()) return Status::Error("unknown vtree position");
      const size_t k = std::stoul(tok[3]);
      if (tok.size() != 4 + 2 * k) return Status::Error("bad decision arity");
      std::vector<std::pair<SddId, SddId>> elements;
      for (size_t i = 0; i < k; ++i) {
        auto pit = node_of.find(static_cast<uint32_t>(std::stoul(tok[4 + 2 * i])));
        auto sit = node_of.find(static_cast<uint32_t>(std::stoul(tok[5 + 2 * i])));
        if (pit == node_of.end() || sit == node_of.end()) {
          return Status::Error("sdd forward reference");
        }
        elements.push_back({pit->second, sit->second});
      }
      last = mgr.MakeDecision(vit->second, std::move(elements));
      node_of[static_cast<uint32_t>(std::stoul(tok[1]))] = last;
    } else {
      return Status::Error("unknown sdd line: " + std::string(line));
    }
  }
  if (last == kInvalidSdd) return Status::Error("empty sdd file");
  return last;
}

}  // namespace tbc
