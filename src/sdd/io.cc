#include "sdd/io.h"

#include <functional>
#include <unordered_map>

#include "base/strings.h"

namespace tbc {

std::string WriteSdd(const SddManager& mgr, SddId f) {
  std::unordered_map<SddId, uint32_t> file_id;
  std::string body;
  uint32_t next = 0;
  std::function<uint32_t(SddId)> emit = [&](SddId g) -> uint32_t {
    auto it = file_id.find(g);
    if (it != file_id.end()) return it->second;
    uint32_t id;
    if (mgr.IsConstant(g)) {
      id = next++;
      body += std::string(g == mgr.True() ? "T " : "F ") + std::to_string(id) + "\n";
    } else if (mgr.IsLiteral(g)) {
      id = next++;
      body += "L " + std::to_string(id) + " " +
              std::to_string(mgr.vtree().position(mgr.vtree_node(g))) + " " +
              std::to_string(mgr.literal(g).ToDimacs()) + "\n";
    } else {
      std::string elems;
      size_t k = 0;
      for (const auto& [p, s] : mgr.elements(g)) {
        const uint32_t pid = emit(p);
        const uint32_t sid = emit(s);
        elems += " " + std::to_string(pid) + " " + std::to_string(sid);
        ++k;
      }
      id = next++;
      body += "D " + std::to_string(id) + " " +
              std::to_string(mgr.vtree().position(mgr.vtree_node(g))) + " " +
              std::to_string(k) + elems + "\n";
    }
    file_id.emplace(g, id);
    return id;
  };
  emit(f);
  return "sdd " + std::to_string(next) + "\n" + body;
}

namespace {

Status BadLine(size_t line_no, const std::string& what) {
  return Status::InvalidInput("line " + std::to_string(line_no) + ": " + what);
}

// Strict uint32 file-id parse shared by every node line.
bool ParseFileId(const std::string& tok, uint32_t* out) {
  uint64_t wide = 0;
  if (!ParseUint64(tok, &wide) || wide > UINT32_MAX) return false;
  *out = static_cast<uint32_t>(wide);
  return true;
}

}  // namespace

Result<SddId> ReadSdd(SddManager& mgr, const std::string& text) {
  // Map in-order vtree positions back to vtree nodes.
  std::unordered_map<uint32_t, VtreeId> vtree_at;
  for (VtreeId v = 0; v < mgr.vtree().num_nodes(); ++v) {
    vtree_at[mgr.vtree().position(v)] = v;
  }
  std::unordered_map<uint32_t, SddId> node_of;
  bool saw_header = false;
  SddId last = kInvalidSdd;
  size_t line_no = 0;
  for (const std::string& raw : SplitChar(text, '\n')) {
    ++line_no;
    std::string_view line = StripWhitespace(raw);
    if (line.empty() || line[0] == 'c') continue;
    const std::vector<std::string> tok = SplitWhitespace(line);
    if (tok[0] == "sdd") {
      saw_header = true;
      continue;
    }
    if (!saw_header) return BadLine(line_no, "missing sdd header");
    uint32_t file_id = 0;
    if (tok.size() >= 2 && !ParseFileId(tok[1], &file_id)) {
      return BadLine(line_no, "bad node id '" + tok[1] + "'");
    }
    if (tok[0] == "F" || tok[0] == "T") {
      if (tok.size() != 2) return BadLine(line_no, "bad constant line");
      last = tok[0] == "T" ? mgr.True() : mgr.False();
      node_of[file_id] = last;
    } else if (tok[0] == "L") {
      if (tok.size() != 4) return BadLine(line_no, "bad literal line");
      int dimacs = 0;
      if (!ParseInt(tok[3], &dimacs) || dimacs == 0 || dimacs < -(1 << 28) ||
          dimacs > (1 << 28)) {
        return BadLine(line_no, "bad literal '" + tok[3] + "'");
      }
      const Lit l = Lit::FromDimacs(dimacs);
      if (l.var() >= mgr.num_vars()) {
        return BadLine(line_no, "literal variable " + std::to_string(l.var() + 1) +
                                    " exceeds manager's " +
                                    std::to_string(mgr.num_vars()) + " variables");
      }
      last = mgr.LiteralNode(l);
      node_of[file_id] = last;
    } else if (tok[0] == "D") {
      if (tok.size() < 4) return BadLine(line_no, "bad decision line");
      uint32_t pos = 0;
      if (!ParseFileId(tok[2], &pos)) {
        return BadLine(line_no, "bad vtree position '" + tok[2] + "'");
      }
      auto vit = vtree_at.find(pos);
      if (vit == vtree_at.end()) {
        return BadLine(line_no, "unknown vtree position " + std::to_string(pos));
      }
      uint64_t k = 0;
      if (!ParseUint64(tok[3], &k) || k == 0) {
        return BadLine(line_no, "bad element count '" + tok[3] + "'");
      }
      if (tok.size() != 4 + 2 * k) {
        return BadLine(line_no, "decision arity does not match element count");
      }
      std::vector<std::pair<SddId, SddId>> elements;
      for (size_t i = 0; i < k; ++i) {
        uint32_t pid = 0, sid = 0;
        if (!ParseFileId(tok[4 + 2 * i], &pid) ||
            !ParseFileId(tok[5 + 2 * i], &sid)) {
          return BadLine(line_no, "bad element reference");
        }
        auto pit = node_of.find(pid);
        auto sit = node_of.find(sid);
        if (pit == node_of.end() || sit == node_of.end()) {
          return BadLine(line_no, "sdd forward reference");
        }
        elements.push_back({pit->second, sit->second});
      }
      // MakeDecision requires the primes to form a partition; check
      // exhaustiveness here so a malformed file cannot trip its internal
      // invariants (all-⊥ primes abort; a lone non-⊤ prime violates
      // trimming rule 1).
      SddId prime_union = mgr.False();
      for (const auto& [p, s] : elements) {
        prime_union = mgr.Disjoin(prime_union, p);
      }
      if (prime_union != mgr.True()) {
        return BadLine(line_no, "decision primes are not exhaustive");
      }
      last = mgr.MakeDecision(vit->second, std::move(elements));
      node_of[file_id] = last;
    } else {
      return BadLine(line_no, "unknown sdd line: " + std::string(line));
    }
  }
  if (last == kInvalidSdd) return Status::InvalidInput("empty sdd file");
  return last;
}

}  // namespace tbc
