#ifndef TBC_SDD_COMPILE_H_
#define TBC_SDD_COMPILE_H_

#include "logic/cnf.h"
#include "logic/formula.h"
#include "sdd/sdd.h"

namespace tbc {

/// Bottom-up CNF -> SDD compilation: clause SDDs are conjoined in an order
/// that keeps intermediate results local to the vtree (clauses sorted by
/// the highest vtree position they touch). This is the classic compilation
/// mode of the SDD library [Darwiche 2011; Choi & Darwiche 2013].
SddId CompileCnf(SddManager& mgr, const Cnf& cnf);

/// Clause (disjunction of literals) and cube (conjunction of literals).
SddId CompileClause(SddManager& mgr, const Clause& clause);
SddId CompileCube(SddManager& mgr, const std::vector<Lit>& cube);

/// Bottom-up formula AST -> SDD compilation.
SddId CompileFormula(SddManager& mgr, const FormulaStore& store, FormulaId f);

}  // namespace tbc

#endif  // TBC_SDD_COMPILE_H_
