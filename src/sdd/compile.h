#ifndef TBC_SDD_COMPILE_H_
#define TBC_SDD_COMPILE_H_

#include "base/guard.h"
#include "base/result.h"
#include "logic/cnf.h"
#include "logic/formula.h"
#include "sdd/sdd.h"

namespace tbc {

/// Bottom-up CNF -> SDD compilation: clause SDDs are conjoined in an order
/// that keeps intermediate results local to the vtree (clauses sorted by
/// the highest vtree position they touch). This is the classic compilation
/// mode of the SDD library [Darwiche 2011; Choi & Darwiche 2013].
/// Unbounded: intermediate SDDs are worst-case exponential.
SddId CompileCnf(SddManager& mgr, const Cnf& cnf);

/// Resource-governed compilation: attaches `guard` to the manager for the
/// duration of the call, so node budgets and deadlines interrupt even a
/// single blowing-up apply. On a trip the manager is restored to a clean
/// (re-armed, guard detached) state and the typed refusal is returned;
/// nodes created before the trip remain allocated but unreferenced.
Result<SddId> CompileCnfBounded(SddManager& mgr, const Cnf& cnf, Guard& guard);

/// Clause (disjunction of literals) and cube (conjunction of literals).
SddId CompileClause(SddManager& mgr, const Clause& clause);
SddId CompileCube(SddManager& mgr, const std::vector<Lit>& cube);

/// Bottom-up formula AST -> SDD compilation.
SddId CompileFormula(SddManager& mgr, const FormulaStore& store, FormulaId f);

}  // namespace tbc

#endif  // TBC_SDD_COMPILE_H_
