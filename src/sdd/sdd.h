#ifndef TBC_SDD_SDD_H_
#define TBC_SDD_SDD_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "base/bigint.h"
#include "base/flat_table.h"
#include "base/guard.h"
#include "base/hash.h"
#include "base/result.h"
#include "logic/lit.h"
#include "nnf/nnf.h"
#include "vtree/vtree.h"

namespace tbc {

/// Node index within an SddManager. 0 and 1 are the constants ⊥ and ⊤.
using SddId = uint32_t;
constexpr SddId kInvalidSdd = static_cast<SddId>(-1);

/// Sentential Decision Diagram package [Darwiche 2011] (paper §3, Fig 9).
///
/// An SDD is structured by a vtree. A decision node respecting internal
/// vtree node v is a set of elements {(p_i, s_i)}: the *primes* p_i are
/// SDDs over v's left variables forming a partition (mutually exclusive,
/// exhaustive, non-false — the strong determinism of Fig 9), and the *subs*
/// s_i are SDDs over v's right variables. The node denotes ∨_i (p_i ∧ s_i),
/// a multiplexer that passes exactly one sub.
///
/// The manager maintains *compressed* (distinct subs) and *trimmed* nodes
/// with hash consing, so SDDs are canonical for the vtree [Darwiche 2011]:
/// equivalent formulas get the identical node. Apply (∧/∨) runs in
/// O(|f|·|g|); negation and conditioning are linear. With a right-linear
/// vtree the manager builds exactly OBDDs (Fig 10c/11).
class SddManager {
 public:
  explicit SddManager(Vtree vtree);

  const Vtree& vtree() const { return vtree_; }
  size_t num_vars() const { return vtree_.num_vars(); }

  SddId False() const { return 0; }
  SddId True() const { return 1; }
  SddId LiteralNode(Lit l);

  /// f ∧ g and f ∨ g (polytime apply).
  SddId Conjoin(SddId f, SddId g);
  SddId Disjoin(SddId f, SddId g);
  /// ¬f (linear time).
  SddId Negate(SddId f);
  /// f | l (conditioning, linear time).
  SddId Condition(SddId f, Lit l);
  /// ∃v. f = f|v ∨ f|¬v.
  SddId Exists(SddId f, Var v) {
    return Disjoin(Condition(f, Pos(v)), Condition(f, Neg(v)));
  }

  bool IsConstant(SddId f) const { return f <= 1; }
  bool IsLiteral(SddId f) const {
    return !IsConstant(f) && nodes_[f].elements.empty();
  }
  bool IsDecision(SddId f) const {
    return !IsConstant(f) && !nodes_[f].elements.empty();
  }
  Lit literal(SddId f) const { return Lit::FromCode(nodes_[f].lit_code); }
  /// Vtree node the SDD node respects (leaf for literals; invalid for ⊤/⊥).
  VtreeId vtree_node(SddId f) const {
    return IsConstant(f) ? kInvalidVtree : nodes_[f].vtree;
  }
  /// Elements (prime, sub) of a decision node.
  const std::vector<std::pair<SddId, SddId>>& elements(SddId f) const {
    return nodes_[f].elements;
  }

  /// Truth value under a complete assignment.
  bool Evaluate(SddId f, const Assignment& assignment) const;
  /// SDD size: total number of elements over reachable decision nodes (the
  /// size measure reported throughout the paper).
  size_t Size(SddId f) const;
  /// Reachable decision-node count.
  size_t NumDecisionNodes(SddId f) const;

  /// Exact model count over all vtree variables.
  BigUint ModelCount(SddId f);
  /// Weighted model count over all vtree variables.
  double Wmc(SddId f, const WeightMap& weights);

  /// Exports as d-DNNF (structured decomposable, deterministic).
  NnfId ToNnf(SddId f, NnfManager& nnf) const;

  /// Total nodes ever created (statistics).
  size_t num_nodes() const { return nodes_.size(); }

  /// Pre-sizes node storage and the unique table for `n` expected nodes
  /// (e.g. an OBDD import of known size).
  void ReserveNodes(size_t n) {
    nodes_.reserve(n);
    unique_.Reserve(n);
  }

  /// Attaches a resource guard (borrowed, may be null to detach). A single
  /// Apply is worst-case O(|f|·|g|) with |f|,|g| themselves exponential in
  /// the input, so the check sits *inside* the apply recursion: when the
  /// guard trips (deadline, node budget, or cancellation) the manager sets
  /// its interrupted flag, the in-flight recursion unwinds in constant time
  /// per frame, and every subsequent operation returns ⊥ immediately until
  /// ClearInterrupt(). Interruption never corrupts the manager: the unique
  /// tables stay canonical; only results produced while interrupted are
  /// meaningless and must be discarded by the caller.
  void set_guard(Guard* guard) { guard_ = guard; }
  Guard* guard() const { return guard_; }
  bool interrupted() const { return interrupted_; }
  /// Why the manager was interrupted; Ok if it was not.
  const Status& interrupt_status() const { return interrupt_status_; }
  /// Re-arms an interrupted manager (existing nodes remain valid).
  void ClearInterrupt() {
    interrupted_ = false;
    interrupt_status_ = Status::Ok();
  }

  /// Builds a canonical decision node respecting vtree node v from raw
  /// elements (primes must partition ⊤ over v's left vars). Compresses
  /// equal subs, drops ⊥ primes, applies trimming rules. Exposed for the
  /// structured-space compilers; most callers want Conjoin/Disjoin.
  SddId MakeDecision(VtreeId v, std::vector<std::pair<SddId, SddId>> elements);

 private:
  struct Node {
    VtreeId vtree;
    uint32_t lit_code = static_cast<uint32_t>(-1);  // for literal nodes
    std::vector<std::pair<SddId, SddId>> elements;  // for decision nodes
    SddId negation = kInvalidSdd;                   // cached lazily
  };
  enum class Op : uint8_t { kAnd, kOr };

  struct OpKey {
    uint64_t fg = 0;
    uint32_t tag = 0;
    bool operator==(const OpKey& o) const { return fg == o.fg && tag == o.tag; }
    // Found by ADL from LossyCache. Both fields go through a full splitmix64
    // mix; the old `fg ^ (tag * φ)` pre-mix left the low bits of fg nearly
    // intact, which clusters direct-mapped slots for consecutive node ids.
    friend uint64_t HashValue(const OpKey& k) {
      return HashU64(k.fg) ^ HashU64(static_cast<uint64_t>(k.tag) + 0x9e3779b97f4a7c15ull);
    }
  };

  SddId Intern(Node node);
  SddId Apply(Op op, SddId f, SddId g);
  // Charges the guard and latches the interrupted flag; returns true when
  // the current operation should unwind.
  bool ChargeAndCheck(uint64_t new_nodes);
  // Expresses g (whose vtree is inside a subtree of v) as a decision node
  // normalized for v.
  std::vector<std::pair<SddId, SddId>> NormalizeTo(VtreeId v, SddId g);

  Vtree vtree_;
  std::vector<Node> nodes_;
  UniqueTable unique_;
  LossyCache<OpKey, SddId> op_cache_;
  Guard* guard_ = nullptr;  // borrowed; null = unbounded
  bool interrupted_ = false;
  Status interrupt_status_;
};

}  // namespace tbc

#endif  // TBC_SDD_SDD_H_
