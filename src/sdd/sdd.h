#ifndef TBC_SDD_SDD_H_
#define TBC_SDD_SDD_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "base/bigint.h"
#include "base/flat_table.h"
#include "base/guard.h"
#include "base/hash.h"
#include "base/result.h"
#include "logic/lit.h"
#include "nnf/nnf.h"
#include "vtree/vtree.h"

namespace tbc {

/// Node index within an SddManager. 0 and 1 are the constants ⊥ and ⊤.
using SddId = uint32_t;
constexpr SddId kInvalidSdd = static_cast<SddId>(-1);

/// Outcome of one in-place vtree edit on a live SDD.
struct SddEditResult {
  bool applied = false;  /// the shape permitted the move and it committed
  bool aborted = false;  /// the guard tripped mid-edit; state rolled back
  size_t relabeled = 0;  /// nodes moved verbatim to the new fragment root
  size_t rewritten = 0;  /// nodes whose partitions were recomputed
  size_t reclaimed = 0;  /// nodes retired behind forwarding pointers
};

/// Policy for the manager's size-triggered auto-minimize hook.
enum class SddMinimizeMode : uint8_t { kOff, kAuto, kAggressive };

struct SddAutoMinimizeOptions {
  SddMinimizeMode mode = SddMinimizeMode::kOff;
  /// Fire when live nodes exceed growth_ratio × the live count after the
  /// previous pass (or min_live_nodes for the first pass).
  double growth_ratio = 2.0;
  size_t min_live_nodes = 512;
  /// In-place edits attempted per firing.
  size_t ops_per_pass = 96;

  static SddAutoMinimizeOptions ForMode(SddMinimizeMode mode) {
    SddAutoMinimizeOptions o;
    o.mode = mode;
    if (mode == SddMinimizeMode::kAggressive) {
      o.growth_ratio = 1.25;
      o.min_live_nodes = 128;
      o.ops_per_pass = 192;
    }
    return o;
  }
};

/// Sentential Decision Diagram package [Darwiche 2011] (paper §3, Fig 9).
///
/// An SDD is structured by a vtree. A decision node respecting internal
/// vtree node v is a set of elements {(p_i, s_i)}: the *primes* p_i are
/// SDDs over v's left variables forming a partition (mutually exclusive,
/// exhaustive, non-false — the strong determinism of Fig 9), and the *subs*
/// s_i are SDDs over v's right variables. The node denotes ∨_i (p_i ∧ s_i),
/// a multiplexer that passes exactly one sub.
///
/// The manager maintains *compressed* (distinct subs) and *trimmed* nodes
/// with hash consing, so SDDs are canonical for the vtree [Darwiche 2011]:
/// equivalent formulas get the identical node. Apply (∧/∨) runs in
/// O(|f|·|g|); negation and conditioning are linear. With a right-linear
/// vtree the manager builds exactly OBDDs (Fig 10c/11).
class SddManager {
 public:
  explicit SddManager(Vtree vtree);

  const Vtree& vtree() const { return vtree_; }
  size_t num_vars() const { return vtree_.num_vars(); }

  SddId False() const { return 0; }
  SddId True() const { return 1; }
  SddId LiteralNode(Lit l);

  /// f ∧ g and f ∨ g (polytime apply).
  SddId Conjoin(SddId f, SddId g);
  SddId Disjoin(SddId f, SddId g);
  /// ¬f (linear time).
  SddId Negate(SddId f);
  /// f | l (conditioning, linear time).
  SddId Condition(SddId f, Lit l);
  /// ∃v. f = f|v ∨ f|¬v.
  SddId Exists(SddId f, Var v) {
    return Disjoin(Condition(f, Pos(v)), Condition(f, Neg(v)));
  }

  bool IsConstant(SddId f) const { return f <= 1; }
  bool IsLiteral(SddId f) const {
    return !IsConstant(f) && nodes_[f].elements.empty();
  }
  bool IsDecision(SddId f) const {
    return !IsConstant(f) && !nodes_[f].elements.empty();
  }
  Lit literal(SddId f) const { return Lit::FromCode(nodes_[f].lit_code); }
  /// Vtree node the SDD node respects (leaf for literals; invalid for ⊤/⊥).
  VtreeId vtree_node(SddId f) const {
    return IsConstant(f) ? kInvalidVtree : nodes_[f].vtree;
  }
  /// Elements (prime, sub) of a decision node.
  const std::vector<std::pair<SddId, SddId>>& elements(SddId f) const {
    return nodes_[f].elements;
  }

  /// Truth value under a complete assignment.
  bool Evaluate(SddId f, const Assignment& assignment) const;
  /// SDD size: total number of elements over reachable decision nodes (the
  /// size measure reported throughout the paper).
  size_t Size(SddId f) const;
  /// Reachable decision-node count.
  size_t NumDecisionNodes(SddId f) const;

  /// Exact model count over all vtree variables.
  BigUint ModelCount(SddId f);
  /// Weighted model count over all vtree variables.
  double Wmc(SddId f, const WeightMap& weights);

  /// Exports as d-DNNF (structured decomposable, deterministic).
  NnfId ToNnf(SddId f, NnfManager& nnf) const;

  /// Total nodes ever created (statistics).
  size_t num_nodes() const { return nodes_.size(); }

  /// Pre-sizes node storage and the unique table for `n` expected nodes
  /// (e.g. an OBDD import of known size).
  void ReserveNodes(size_t n) {
    nodes_.reserve(n);
    unique_.Reserve(n);
  }

  /// Attaches a resource guard (borrowed, may be null to detach). A single
  /// Apply is worst-case O(|f|·|g|) with |f|,|g| themselves exponential in
  /// the input, so the check sits *inside* the apply recursion: when the
  /// guard trips (deadline, node budget, or cancellation) the manager sets
  /// its interrupted flag, the in-flight recursion unwinds in constant time
  /// per frame, and every subsequent operation returns ⊥ immediately until
  /// ClearInterrupt(). Interruption never corrupts the manager: the unique
  /// tables stay canonical; only results produced while interrupted are
  /// meaningless and must be discarded by the caller.
  void set_guard(Guard* guard) { guard_ = guard; }
  Guard* guard() const { return guard_; }
  bool interrupted() const { return interrupted_; }
  /// Why the manager was interrupted; Ok if it was not.
  const Status& interrupt_status() const { return interrupt_status_; }
  /// Re-arms an interrupted manager (existing nodes remain valid).
  void ClearInterrupt() {
    interrupted_ = false;
    interrupt_status_ = Status::Ok();
  }

  /// Builds a canonical decision node respecting vtree node v from raw
  /// elements (primes must partition ⊤ over v's left vars). Compresses
  /// equal subs, drops ⊥ primes, applies trimming rules. Exposed for the
  /// structured-space compilers; most callers want Conjoin/Disjoin.
  SddId MakeDecision(VtreeId v, std::vector<std::pair<SddId, SddId>> elements);

  /// ---- In-place dynamic vtree minimization [Choi & Darwiche 2013] ----
  ///
  /// Applies one vtree operation directly to the live SDD: the vtree is
  /// mutated and only the SDD nodes normalized for the edited fragment —
  /// node v and its rotated child — are touched (the textbook locality
  /// property). Nodes at the moving child are relabeled verbatim; nodes at
  /// v get their partitions recomputed for the new variable split; a node
  /// whose new canonical form trims to a smaller node is *reclaimed*: it
  /// is retired behind a forwarding pointer and references to it in
  /// ancestor-labeled nodes are rewritten. Apply-cache entries survive as
  /// function-level facts (node ids keep their function through every
  /// edit); per-edit epochs hide the handful of structurally hazardous
  /// entries in O(1) instead of scanning the cache (see OpCacheEntry).
  ///
  /// Guard semantics: partition recomputation charges the attached guard
  /// like any apply. When the guard trips mid-edit, the edit rolls back
  /// completely (vtree, unique table, node storage), `aborted` is set, and
  /// the manager is left interrupted — consistent but mid-operation
  /// results discarded, exactly like an interrupted Apply.
  ///
  /// External SddIds held across an edit must be re-homed with Resolve().
  SddEditResult RotateRightInPlace(VtreeId v);
  SddEditResult RotateLeftInPlace(VtreeId v);
  SddEditResult SwapChildrenInPlace(VtreeId v);

  /// Canonical survivor of `f` after in-place edits: chases forwarding
  /// pointers left by reclaimed nodes (identity for live ids).
  SddId Resolve(SddId f) const {
    while (!IsConstant(f) && nodes_[f].forward != kInvalidSdd) {
      f = nodes_[f].forward;
    }
    return f;
  }
  /// True when `f` was reclaimed by an in-place edit (use Resolve()).
  bool IsDead(SddId f) const {
    return !IsConstant(f) && nodes_[f].forward != kInvalidSdd;
  }
  /// Nodes currently alive (excludes the two constants and reclaimed
  /// nodes) — the size signal the auto-minimize trigger watches.
  size_t live_node_count() const { return nodes_.size() - 2 - dead_count_; }

  /// Size-triggered auto-minimize. Callers at safe points (no apply in
  /// flight) pass their current root, which must be their ONLY outstanding
  /// SddId: when the live node count has grown past the configured
  /// multiple of the last-minimized count, the manager garbage-collects
  /// down to the root (invalidating every other id — see
  /// GarbageCollect()), runs a bounded greedy pass of in-place edits, and
  /// returns the (possibly re-homed) root. A no-op when the mode is kOff,
  /// the manager is interrupted, or the trigger has not fired.
  SddId MaybeAutoMinimize(SddId root);
  void set_auto_minimize(const SddAutoMinimizeOptions& options) {
    auto_minimize_ = options;
  }
  const SddAutoMinimizeOptions& auto_minimize() const { return auto_minimize_; }
  /// Times the auto-minimize trigger fired on this manager.
  size_t auto_minimize_fires() const { return auto_minimize_fires_; }

  /// Rebuilds the manager to hold exactly the nodes reachable from `root`
  /// (plus the constants), dropping everything else: compilation
  /// intermediates, reclaimed husks, unique-table and op-cache ballast.
  /// Returns the re-homed root; EVERY other SddId into this manager is
  /// invalidated, so callers own the decision that `root` is the only
  /// live reference. Collecting before a minimization pass is what makes
  /// in-place edits local: an edit rewrites all nodes at its vtree label,
  /// and after a compile most of those are dead intermediates that a
  /// collected manager no longer carries.
  SddId GarbageCollect(SddId root);

  /// Process-wide default auto-minimize policy, copied by every manager at
  /// construction — how `kc_cli --sdd-minimize` / `tbc_serve
  /// --sdd-minimize` reach managers created deep inside the portfolio and
  /// compile paths without plumbing. Set once at startup (reads are
  /// unsynchronized by design, like other process-wide configuration).
  static void SetDefaultAutoMinimize(const SddAutoMinimizeOptions& options);
  static const SddAutoMinimizeOptions& DefaultAutoMinimize();

 private:
  struct Node {
    VtreeId vtree;
    uint32_t lit_code = static_cast<uint32_t>(-1);  // for literal nodes
    std::vector<std::pair<SddId, SddId>> elements;  // for decision nodes
    SddId negation = kInvalidSdd;                   // cached lazily
    SddId forward = kInvalidSdd;  // set = reclaimed; chase via Resolve()
  };
  enum class Op : uint8_t { kAnd, kOr };
  enum class EditKind : uint8_t { kRotateRight, kRotateLeft, kSwap };

  /// Canonicalized decision-node content before interning: either the
  /// trimmed replacement node, or the compressed+sorted element list.
  struct BuiltDecision {
    SddId trimmed = kInvalidSdd;
    std::vector<std::pair<SddId, SddId>> elements;
  };

  struct OpKey {
    uint64_t fg = 0;
    uint32_t tag = 0;
    bool operator==(const OpKey& o) const { return fg == o.fg && tag == o.tag; }
    // Found by ADL from LossyCache. Both fields go through a full splitmix64
    // mix; the old `fg ^ (tag * φ)` pre-mix left the low bits of fg nearly
    // intact, which clusters direct-mapped slots for consecutive node ids.
    friend uint64_t HashValue(const OpKey& k) {
      return HashU64(k.fg) ^ HashU64(static_cast<uint64_t>(k.tag) + 0x9e3779b97f4a7c15ull);
    }
  };

  /// Op-cache value: the result id plus the edit epoch it was minted in
  /// (0 = outside any in-place edit). Node ids are stable function
  /// handles, so entries stay semantically valid across vtree edits; the
  /// epoch exists for two structural hazards. During edit k, a pre-edit
  /// result can be one of the very nodes being rewritten (its stored
  /// partition is stale, and splicing it into a phase-1 partition would
  /// create ill-formed or cyclic element references) — only results
  /// living strictly below the edited vtree node, whose whole DAG closure
  /// the rewrite cannot touch, are reusable. And entries from an aborted
  /// edit are rejected forever (their result ids were truncated and may
  /// be reused). This replaces the old per-edit O(cache-capacity) EraseIf
  /// scans, which dominated minimization cost.
  struct OpCacheEntry {
    SddId result = kInvalidSdd;
    uint32_t epoch = 0;
  };
  /// The live id to serve for a cached entry in the current context, or
  /// kInvalidSdd if the entry is unusable here.
  SddId UsableCacheResult(const OpCacheEntry& e) const {
    if (e.epoch != 0 && !(in_edit_ && e.epoch == edit_epoch_) &&
        !edit_committed_[e.epoch - 1]) {
      return kInvalidSdd;  // minted during an edit that later aborted
    }
    if (!in_edit_ || e.epoch == edit_epoch_) return Resolve(e.result);
    // Pre-edit entry read mid-edit: usable only strictly below the edit.
    const SddId r = Resolve(e.result);
    if (IsConstant(r) || IsLiteral(r)) return r;
    const VtreeId w = nodes_[r].vtree;
    return w != edit_v_ && vtree_.IsAncestorOrSelf(edit_v_, w) ? r
                                                               : kInvalidSdd;
  }
  // Opens / closes the per-edit cache epoch bracketing Edit's mutations.
  void BeginEdit(VtreeId v) {
    edit_epoch_ = static_cast<uint32_t>(edit_committed_.size()) + 1;
    edit_v_ = v;
    in_edit_ = true;
  }
  void EndEdit(bool committed) {
    edit_committed_.push_back(committed);
    in_edit_ = false;
  }

  SddId Intern(Node node);
  SddId Apply(Op op, SddId f, SddId g);
  // Charges the guard and latches the interrupted flag; returns true when
  // the current operation should unwind.
  bool ChargeAndCheck(uint64_t new_nodes);
  // Expresses g (whose vtree is inside a subtree of v) as a decision node
  // normalized for v.
  std::vector<std::pair<SddId, SddId>> NormalizeTo(VtreeId v, SddId g);

  // Content hash used by the unique table (needed again on erase).
  uint64_t NodeHash(const Node& node) const;
  // Canonicalization shared by MakeDecision and the in-place rewrites:
  // drops ⊥ primes, compresses equal subs, applies the trimming rules and
  // sorts — everything except interning.
  BuiltDecision BuildDecision(std::vector<std::pair<SddId, SddId>> elements);
  // Live decision nodes currently labeled `v` (compacts the per-label
  // index as a side effect).
  std::vector<SddId> CollectAt(VtreeId v);
  // Moves a live decision node to label `v` (unique-table rehash included).
  void Relabel(SddId id, VtreeId v);
  // Shared implementation of the three in-place edits.
  SddEditResult Edit(EditKind kind, VtreeId v);
  // Rolls an interrupted edit back: strips nodes created since `mark`,
  // restores the relabeled nodes to `child` and undoes the vtree move.
  void AbortEdit(EditKind kind, VtreeId v, VtreeId child,
                 const std::vector<SddId>& relabeled, size_t mark);
  // Bounded greedy pass over in-place edits (the auto-minimize worker).
  SddId GreedyMinimizePass(SddId root, size_t ops, uint64_t seed);

  Vtree vtree_;
  std::vector<Node> nodes_;
  // Live decision-node ids per vtree label (lazily compacted): gives every
  // edit its stale-node set in output-sensitive time instead of a full
  // node-table scan.
  std::vector<std::vector<SddId>> nodes_at_;
  size_t dead_count_ = 0;
  UniqueTable unique_;
  LossyCache<OpKey, OpCacheEntry> op_cache_;
  // Edit epochs: one bit per completed in-place edit (committed / aborted),
  // indexed by epoch - 1. ~1 bit of growth per edit.
  std::vector<bool> edit_committed_;
  uint32_t edit_epoch_ = 0;
  VtreeId edit_v_ = kInvalidVtree;  // vtree node of the edit in progress
  bool in_edit_ = false;
  Guard* guard_ = nullptr;  // borrowed; null = unbounded
  bool interrupted_ = false;
  Status interrupt_status_;
  SddAutoMinimizeOptions auto_minimize_;
  size_t auto_minimize_fires_ = 0;
  size_t last_minimized_live_ = 0;
};

}  // namespace tbc

#endif  // TBC_SDD_SDD_H_
