#ifndef TBC_SDD_FROM_OBDD_H_
#define TBC_SDD_FROM_OBDD_H_

#include "obdd/obdd.h"
#include "sdd/sdd.h"

namespace tbc {

/// Imports an OBDD into an SDD manager. With a right-linear vtree over the
/// OBDD's variable order this is the exact OBDD⊂SDD correspondence of
/// paper Fig 10(c)/11 (every OBDD is an SDD); other vtrees re-structure
/// the function via apply.
SddId ObddToSdd(const ObddManager& obdd, ObddId f, SddManager& sdd);

}  // namespace tbc

#endif  // TBC_SDD_FROM_OBDD_H_
