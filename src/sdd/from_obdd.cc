#include "sdd/from_obdd.h"

#include <functional>
#include <unordered_map>

#ifdef TBC_VALIDATE
#include "analysis/validate.h"
#endif

namespace tbc {

SddId ObddToSdd(const ObddManager& obdd, ObddId f, SddManager& sdd) {
  std::unordered_map<ObddId, SddId> memo;
  std::function<SddId(ObddId)> rec = [&](ObddId g) -> SddId {
    if (g == obdd.False()) return sdd.False();
    if (g == obdd.True()) return sdd.True();
    auto it = memo.find(g);
    if (it != memo.end()) return it->second;
    const Var v = obdd.var(g);
    const SddId hi = rec(obdd.hi(g));
    const SddId lo = rec(obdd.lo(g));
    const SddId r = sdd.Disjoin(sdd.Conjoin(sdd.LiteralNode(Pos(v)), hi),
                                sdd.Conjoin(sdd.LiteralNode(Neg(v)), lo));
    memo.emplace(g, r);
    return r;
  };
  const SddId root = rec(f);
#ifdef TBC_VALIDATE
  ValidateObddOrDie(obdd, f, "ObddToSdd (input)");
  if (sdd.guard() == nullptr) ValidateSddOrDie(sdd, root, "ObddToSdd");
#endif
  return root;
}

}  // namespace tbc
