#include "sdd/from_obdd.h"

#include <functional>

#include "base/flat_table.h"

#ifdef TBC_VALIDATE
#include "analysis/validate.h"
#endif

namespace tbc {

SddId ObddToSdd(const ObddManager& obdd, ObddId f, SddManager& sdd) {
  // Every OBDD node yields at least one SDD apply, so both the memo and the
  // manager's node pool are at least OBDD-sized: reserve up front.
  FlatMap<ObddId, SddId> memo;
  memo.reserve(obdd.num_nodes());
  sdd.ReserveNodes(sdd.num_nodes() + obdd.num_nodes());
  std::function<SddId(ObddId)> rec = [&](ObddId g) -> SddId {
    if (g == obdd.False()) return sdd.False();
    if (g == obdd.True()) return sdd.True();
    if (const SddId* hit = memo.Find(g)) return *hit;
    const Var v = obdd.var(g);
    const SddId hi = rec(obdd.hi(g));
    const SddId lo = rec(obdd.lo(g));
    const SddId r = sdd.Disjoin(sdd.Conjoin(sdd.LiteralNode(Pos(v)), hi),
                                sdd.Conjoin(sdd.LiteralNode(Neg(v)), lo));
    memo.Insert(g, r);
    return r;
  };
  const SddId root = rec(f);
#ifdef TBC_VALIDATE
  ValidateObddOrDie(obdd, f, "ObddToSdd (input)");
  if (sdd.guard() == nullptr) ValidateSddOrDie(sdd, root, "ObddToSdd");
#endif
  return root;
}

}  // namespace tbc
