#include "sdd/compile.h"

#include <algorithm>
#include <functional>

#include "base/flat_table.h"

#ifdef TBC_VALIDATE
#include "analysis/validate.h"
#endif
#ifdef TBC_CERTIFY
#include "certify/emit.h"
#endif

namespace tbc {

SddId CompileClause(SddManager& mgr, const Clause& clause) {
  SddId acc = mgr.False();
  for (Lit l : clause) acc = mgr.Disjoin(acc, mgr.LiteralNode(l));
  return acc;
}

SddId CompileCube(SddManager& mgr, const std::vector<Lit>& cube) {
  SddId acc = mgr.True();
  for (Lit l : cube) acc = mgr.Conjoin(acc, mgr.LiteralNode(l));
  return acc;
}

SddId CompileCnf(SddManager& mgr, const Cnf& cnf) {
  const Vtree& vt = mgr.vtree();
  std::vector<size_t> idx(cnf.num_clauses());
  for (size_t i = 0; i < idx.size(); ++i) idx[i] = i;
  auto max_pos = [&](size_t i) {
    uint32_t m = 0;
    for (Lit l : cnf.clause(i)) {
      m = std::max(m, vt.position(vt.LeafOfVar(l.var())));
    }
    return m;
  };
  std::sort(idx.begin(), idx.end(),
            [&](size_t a, size_t b) { return max_pos(a) < max_pos(b); });
  SddId acc = mgr.True();
  for (size_t i : idx) {
    acc = mgr.Conjoin(acc, CompileClause(mgr, cnf.clause(i)));
    if (acc == mgr.False()) break;
    // Between clause conjoins is a safe point (no apply in flight): let the
    // manager's size-triggered policy squeeze the partial SDD in place.
    acc = mgr.MaybeAutoMinimize(acc);
  }
#ifdef TBC_VALIDATE
  if (mgr.guard() == nullptr) ValidateSddOrDie(mgr, acc, "CompileCnf");
#endif
#ifdef TBC_CERTIFY
  // SDD certificates are semantic (no derivation trace): the apply engine
  // has no clausal replay, so the checker re-derives both entailment
  // directions over the NNF export. Skipped under a guard — the bounded
  // wrapper certifies after the guard is detached.
  if (mgr.guard() == nullptr) CertifySddOrDie(cnf, mgr, acc, "CompileCnf");
#endif
  return acc;
}

Result<SddId> CompileCnfBounded(SddManager& mgr, const Cnf& cnf, Guard& guard) {
  if (mgr.interrupted()) {
    return Status::Error(StatusCode::kInternal,
                         "SddManager is interrupted; call ClearInterrupt()");
  }
  for (const Clause& c : cnf.clauses()) {
    for (Lit l : c) {
      if (l.var() >= mgr.num_vars()) {
        return Status::InvalidInput("CNF variable " + std::to_string(l.var() + 1) +
                                    " outside the manager's vtree");
      }
    }
  }
  TBC_RETURN_IF_ERROR(guard.Check());
  mgr.set_guard(&guard);
  const SddId root = CompileCnf(mgr, cnf);
  mgr.set_guard(nullptr);
  if (mgr.interrupted()) {
    Status s = mgr.interrupt_status();
    mgr.ClearInterrupt();
    return s;
  }
#ifdef TBC_VALIDATE
  ValidateSddOrDie(mgr, root, "CompileCnfBounded");
#endif
#ifdef TBC_CERTIFY
  CertifySddOrDie(cnf, mgr, root, "CompileCnfBounded");
#endif
  return root;
}

SddId CompileFormula(SddManager& mgr, const FormulaStore& store, FormulaId f) {
  FlatMap<FormulaId, SddId> memo;
  memo.reserve(store.num_nodes());
  std::function<SddId(FormulaId)> rec = [&](FormulaId g) -> SddId {
    if (const SddId* hit = memo.Find(g)) return *hit;
    SddId r = mgr.False();
    switch (store.kind(g)) {
      case FormulaStore::Kind::kFalse:
        r = mgr.False();
        break;
      case FormulaStore::Kind::kTrue:
        r = mgr.True();
        break;
      case FormulaStore::Kind::kVar:
        r = mgr.LiteralNode(Pos(store.var(g)));
        break;
      case FormulaStore::Kind::kNot:
        r = mgr.Negate(rec(store.child(g, 0)));
        break;
      case FormulaStore::Kind::kAnd: {
        r = mgr.True();
        for (size_t i = 0; i < store.num_children(g); ++i) {
          r = mgr.Conjoin(r, rec(store.child(g, i)));
        }
        break;
      }
      case FormulaStore::Kind::kOr: {
        r = mgr.False();
        for (size_t i = 0; i < store.num_children(g); ++i) {
          r = mgr.Disjoin(r, rec(store.child(g, i)));
        }
        break;
      }
    }
    memo.Insert(g, r);
    return r;
  };
  return rec(f);
}

}  // namespace tbc
