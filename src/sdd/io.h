#ifndef TBC_SDD_IO_H_
#define TBC_SDD_IO_H_

#include <string>

#include "base/result.h"
#include "sdd/sdd.h"

namespace tbc {

/// Serializes an SDD in the SDD-library exchange format:
///   sdd <count>
///   F <id>                          (constant ⊥)
///   T <id>                          (constant ⊤)
///   L <id> <vtree_pos> <dimacs_lit>
///   D <id> <vtree_pos> <k> <p1> <s1> ... <pk> <sk>
/// Node ids are emission-order; vtree_pos is the in-order position of the
/// node's vtree node (pair the file with Vtree::ToFileString()). The last
/// line defines the root.
std::string WriteSdd(const SddManager& mgr, SddId f);

/// Parses the format above into `mgr` (whose vtree must match the one the
/// file was written against). Elements are re-canonicalized on the way in,
/// so the resulting node is the manager's canonical form of the function.
Result<SddId> ReadSdd(SddManager& mgr, const std::string& text);

}  // namespace tbc

#endif  // TBC_SDD_IO_H_
