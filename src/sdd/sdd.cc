#include "sdd/sdd.h"

#include <algorithm>
#include <functional>

#include "base/check.h"
#include "base/hash.h"
#include "base/observability.h"
#include "nnf/queries.h"

namespace tbc {

SddManager::SddManager(Vtree vtree) : vtree_(std::move(vtree)) {
  // Constants occupy ids 0 (⊥) and 1 (⊤).
  nodes_.push_back({kInvalidVtree, 0, {}, 1});
  nodes_.push_back({kInvalidVtree, 0, {}, 0});
}

bool SddManager::ChargeAndCheck(uint64_t new_nodes) {
  if (interrupted_) return true;
  if (guard_ == nullptr) return false;
  Status s = new_nodes > 0 ? guard_->ChargeNodes(new_nodes) : guard_->Poll();
  if (!s.ok()) {
    interrupted_ = true;
    interrupt_status_ = std::move(s);
    return true;
  }
  return false;
}

SddId SddManager::Intern(Node node) {
  uint64_t h = HashCombine(0, node.vtree);
  h = HashCombine(h, node.lit_code);
  for (const auto& [p, s] : node.elements) h = HashCombine(HashCombine(h, p), s);
  h = HashU64(h);
  const uint32_t found = unique_.Find(h, [&](uint32_t id) {
    const Node& n = nodes_[id];
    return n.vtree == node.vtree && n.lit_code == node.lit_code &&
           n.elements == node.elements;
  });
  if (found != UniqueTable::kNpos) {
    TBC_COUNT("sdd.unique.hits");
    return found;
  }
  TBC_COUNT("sdd.nodes.created");
  const SddId id = static_cast<SddId>(nodes_.size());
  nodes_.push_back(std::move(node));
  unique_.Insert(h, id);
  // The returned id stays valid even when this charge trips the budget;
  // the in-flight operation notices via interrupted() and unwinds.
  ChargeAndCheck(1);
  return id;
}

SddId SddManager::LiteralNode(Lit l) {
  TBC_CHECK(l.var() < num_vars());
  Node n;
  n.vtree = vtree_.LeafOfVar(l.var());
  n.lit_code = l.code();
  return Intern(std::move(n));
}

SddId SddManager::MakeDecision(VtreeId v,
                               std::vector<std::pair<SddId, SddId>> elements) {
  // Drop ⊥ primes.
  std::erase_if(elements, [](const auto& e) { return e.first == 0; });
  // Interrupted sub-applies return ⊥, so a partition can legitimately
  // empty out mid-unwind; the result is discarded by the caller anyway.
  if (elements.empty() && interrupted_) return False();
  TBC_CHECK_MSG(!elements.empty(), "decision node with empty partition");
  // Compress: disjoin primes that share a sub.
  std::sort(elements.begin(), elements.end(),
            [](const auto& a, const auto& b) { return a.second < b.second; });
  std::vector<std::pair<SddId, SddId>> compressed;
  for (const auto& [p, s] : elements) {
    if (!compressed.empty() && compressed.back().second == s) {
      compressed.back().first = Disjoin(compressed.back().first, p);
    } else {
      compressed.push_back({p, s});
    }
  }
  // Trimming rule 1: {(⊤, s)} -> s.
  if (compressed.size() == 1) {
    TBC_DCHECK(compressed[0].first == True() || interrupted_);
    return compressed[0].second;
  }
  // Trimming rule 2: {(p, ⊤), (¬p, ⊥)} -> p.
  if (compressed.size() == 2) {
    // After sorting by sub, compressed[0].second < compressed[1].second.
    if (compressed[0].second == False() && compressed[1].second == True()) {
      return compressed[1].first;
    }
  }
  std::sort(compressed.begin(), compressed.end());
  Node n;
  n.vtree = v;
  n.elements = std::move(compressed);
  return Intern(std::move(n));
}

SddId SddManager::Negate(SddId f) {
  if (nodes_[f].negation != kInvalidSdd) return nodes_[f].negation;
  SddId result;
  if (IsLiteral(f)) {
    result = LiteralNode(~literal(f));
  } else {
    std::vector<std::pair<SddId, SddId>> elements = nodes_[f].elements;
    for (auto& [p, s] : elements) s = Negate(s);
    result = MakeDecision(nodes_[f].vtree, std::move(elements));
  }
  // Never cache negation links computed during an interrupted unwind (the
  // links are permanent; a bogus one would outlive ClearInterrupt()).
  if (interrupted_) return False();
  nodes_[f].negation = result;
  nodes_[result].negation = f;
  return result;
}

std::vector<std::pair<SddId, SddId>> SddManager::NormalizeTo(VtreeId v, SddId g) {
  TBC_DCHECK(!IsConstant(g));
  const VtreeId vg = nodes_[g].vtree;
  if (vtree_.IsAncestorOrSelf(vtree_.left(v), vg)) {
    return {{g, True()}, {Negate(g), False()}};
  }
  TBC_DCHECK(vtree_.IsAncestorOrSelf(vtree_.right(v), vg));
  return {{True(), g}};
}

SddId SddManager::Apply(Op op, SddId f, SddId g) {
  // Once interrupted, unwind in constant time per frame: every pending
  // apply collapses to ⊥ and the caller surfaces interrupt_status().
  if (interrupted_ || ChargeAndCheck(0)) return False();
  // Terminal cases.
  if (f == g) return f;
  if (op == Op::kAnd) {
    if (f == False() || g == False()) return False();
    if (f == True()) return g;
    if (g == True()) return f;
    if (nodes_[f].negation == g) return False();
  } else {
    if (f == True() || g == True()) return True();
    if (f == False()) return g;
    if (g == False()) return f;
    if (nodes_[f].negation == g) return True();
  }
  if (f > g) std::swap(f, g);
  TBC_COUNT("sdd.apply.calls");
  const OpKey key{f | (static_cast<uint64_t>(g) << 32), static_cast<uint32_t>(op)};
  if (const SddId* hit = op_cache_.Find(key)) {
    TBC_COUNT("sdd.apply.cache_hits");
    return *hit;
  }
  TBC_COUNT("sdd.apply.cache_misses");

  const VtreeId vf = nodes_[f].vtree;
  const VtreeId vg = nodes_[g].vtree;
  SddId result;
  if (vf == vg && vtree_.IsLeaf(vf)) {
    // Same-variable literals; equal/complement handled above, so this is
    // x op ¬x.
    result = op == Op::kAnd ? False() : True();
  } else {
    VtreeId v;
    std::vector<std::pair<SddId, SddId>> ef, eg;
    if (vf == vg) {
      v = vf;
      ef = nodes_[f].elements;
      eg = nodes_[g].elements;
    } else if (vtree_.IsAncestorOrSelf(vf, vg)) {
      v = vf;
      ef = nodes_[f].elements;
      eg = NormalizeTo(v, g);
    } else if (vtree_.IsAncestorOrSelf(vg, vf)) {
      v = vg;
      ef = NormalizeTo(v, f);
      eg = nodes_[g].elements;
    } else {
      v = vtree_.Lca(vf, vg);
      ef = NormalizeTo(v, f);
      eg = NormalizeTo(v, g);
    }
    // Cross product of the two partitions.
    std::vector<std::pair<SddId, SddId>> elements;
    elements.reserve(ef.size() * eg.size());
    for (const auto& [p1, s1] : ef) {
      for (const auto& [p2, s2] : eg) {
        const SddId p = Apply(Op::kAnd, p1, p2);
        if (p == False()) continue;
        elements.push_back({p, Apply(op, s1, s2)});
      }
    }
    result = MakeDecision(v, std::move(elements));
  }
  // Results computed during an interrupted unwind are meaningless; keep
  // them out of the op cache so a cleared manager stays correct.
  if (interrupted_) return False();
  op_cache_.Insert(key, result);
  return result;
}

SddId SddManager::Conjoin(SddId f, SddId g) { return Apply(Op::kAnd, f, g); }
SddId SddManager::Disjoin(SddId f, SddId g) { return Apply(Op::kOr, f, g); }

SddId SddManager::Condition(SddId f, Lit l) {
  if (IsConstant(f)) return f;
  if (IsLiteral(f)) {
    const Lit x = literal(f);
    if (x == l) return True();
    if (x == ~l) return False();
    return f;
  }
  const VtreeId v = nodes_[f].vtree;
  const VtreeId leaf = vtree_.LeafOfVar(l.var());
  if (!vtree_.IsAncestorOrSelf(v, leaf)) return f;
  const OpKey key{f, 2u + l.code()};
  if (const SddId* hit = op_cache_.Find(key)) return *hit;
  std::vector<std::pair<SddId, SddId>> elements = nodes_[f].elements;
  if (vtree_.IsAncestorOrSelf(vtree_.left(v), leaf)) {
    for (auto& [p, s] : elements) p = Condition(p, l);
  } else {
    for (auto& [p, s] : elements) s = Condition(s, l);
  }
  const SddId result = MakeDecision(v, std::move(elements));
  if (interrupted_) return False();
  op_cache_.Insert(key, result);
  return result;
}

namespace {

// Reachable node ids in ascending order. Elements always reference
// previously created nodes, so ascending id order is topological
// (children before parents); the dense passes below rely on this.
std::vector<SddId> ReachableAscending(SddId f, size_t num_nodes,
                                      const std::function<bool(SddId)>& is_decision,
                                      const std::function<const std::vector<std::pair<SddId, SddId>>&(SddId)>& elements) {
  std::vector<uint8_t> seen(num_nodes, 0);
  std::vector<SddId> order;
  std::vector<SddId> stack = {f};
  seen[f] = 1;
  while (!stack.empty()) {
    const SddId g = stack.back();
    stack.pop_back();
    order.push_back(g);
    if (!is_decision(g)) continue;
    for (const auto& [p, s] : elements(g)) {
      if (!seen[p]) {
        seen[p] = 1;
        stack.push_back(p);
      }
      if (!seen[s]) {
        seen[s] = 1;
        stack.push_back(s);
      }
    }
  }
  std::sort(order.begin(), order.end());
  return order;
}

}  // namespace

bool SddManager::Evaluate(SddId f, const Assignment& assignment) const {
  if (f == False()) return false;
  if (f == True()) return true;
  const std::vector<SddId> order = ReachableAscending(
      f, nodes_.size(), [this](SddId g) { return IsDecision(g); },
      [this](SddId g) -> const std::vector<std::pair<SddId, SddId>>& {
        return nodes_[g].elements;
      });
  std::vector<int8_t> value(nodes_.size(), 0);
  value[True()] = 1;
  for (const SddId g : order) {
    if (IsConstant(g)) continue;
    if (IsLiteral(g)) {
      value[g] = Eval(literal(g), assignment) ? 1 : 0;
      continue;
    }
    for (const auto& [p, s] : nodes_[g].elements) {
      if (value[p]) {
        value[g] = value[s];  // exactly one prime is high
        break;
      }
    }
  }
  return value[f] == 1;
}

size_t SddManager::Size(SddId f) const {
  size_t size = 0;
  std::vector<uint8_t> seen(nodes_.size(), 0);
  std::vector<SddId> stack = {f};
  seen[f] = 1;
  while (!stack.empty()) {
    const SddId g = stack.back();
    stack.pop_back();
    if (!IsConstant(g) && !nodes_[g].elements.empty()) {
      size += nodes_[g].elements.size();
      for (const auto& [p, s] : nodes_[g].elements) {
        if (!seen[p]) {
          seen[p] = 1;
          stack.push_back(p);
        }
        if (!seen[s]) {
          seen[s] = 1;
          stack.push_back(s);
        }
      }
    }
  }
  return size;
}

size_t SddManager::NumDecisionNodes(SddId f) const {
  size_t count = 0;
  std::vector<uint8_t> seen(nodes_.size(), 0);
  std::vector<SddId> stack = {f};
  seen[f] = 1;
  while (!stack.empty()) {
    const SddId g = stack.back();
    stack.pop_back();
    if (IsDecision(g)) {
      ++count;
      for (const auto& [p, s] : nodes_[g].elements) {
        if (!seen[p]) {
          seen[p] = 1;
          stack.push_back(p);
        }
        if (!seen[s]) {
          seen[s] = 1;
          stack.push_back(s);
        }
      }
    }
  }
  return count;
}

NnfId SddManager::ToNnf(SddId f, NnfManager& nnf) const {
  if (f == False()) return nnf.False();
  if (f == True()) return nnf.True();
  const std::vector<SddId> order = ReachableAscending(
      f, nodes_.size(), [this](SddId g) { return IsDecision(g); },
      [this](SddId g) -> const std::vector<std::pair<SddId, SddId>>& {
        return nodes_[g].elements;
      });
  std::vector<NnfId> memo(nodes_.size(), kInvalidNnf);
  memo[False()] = nnf.False();
  memo[True()] = nnf.True();
  for (const SddId g : order) {
    if (IsConstant(g)) continue;
    if (IsLiteral(g)) {
      memo[g] = nnf.Literal(literal(g));
      continue;
    }
    std::vector<NnfId> parts;
    parts.reserve(nodes_[g].elements.size());
    for (const auto& [p, s] : nodes_[g].elements) {
      parts.push_back(nnf.And(memo[p], memo[s]));
    }
    memo[g] = nnf.Or(std::move(parts));
  }
  return memo[f];
}

BigUint SddManager::ModelCount(SddId f) {
  if (f == False()) return BigUint(0);
  NnfManager nnf;
  const NnfId root = ToNnf(f, nnf);
  return tbc::ModelCount(nnf, root, num_vars());
}

double SddManager::Wmc(SddId f, const WeightMap& weights) {
  if (f == False()) return 0.0;
  NnfManager nnf;
  const NnfId root = ToNnf(f, nnf);
  if (root == nnf.True()) {
    double r = 1.0;
    for (Var v = 0; v < num_vars(); ++v) r *= weights[Pos(v)] + weights[Neg(v)];
    return r;
  }
  return tbc::Wmc(nnf, root, weights);
}

}  // namespace tbc
