#include "sdd/sdd.h"

#include <algorithm>
#include <functional>

#include "base/check.h"
#include "base/hash.h"
#include "nnf/queries.h"

namespace tbc {

size_t SddManager::OpKeyHash::operator()(const OpKey& k) const {
  return HashU64(k.fg ^ (static_cast<uint64_t>(k.tag) * 0x9e3779b97f4a7c15ull));
}

SddManager::SddManager(Vtree vtree) : vtree_(std::move(vtree)) {
  // Constants occupy ids 0 (⊥) and 1 (⊤).
  nodes_.push_back({kInvalidVtree, 0, {}, 1});
  nodes_.push_back({kInvalidVtree, 0, {}, 0});
}

bool SddManager::ChargeAndCheck(uint64_t new_nodes) {
  if (interrupted_) return true;
  if (guard_ == nullptr) return false;
  Status s = new_nodes > 0 ? guard_->ChargeNodes(new_nodes) : guard_->Poll();
  if (!s.ok()) {
    interrupted_ = true;
    interrupt_status_ = std::move(s);
    return true;
  }
  return false;
}

SddId SddManager::Intern(Node node) {
  uint64_t h = HashCombine(0, node.vtree);
  h = HashCombine(h, node.lit_code);
  for (const auto& [p, s] : node.elements) h = HashCombine(HashCombine(h, p), s);
  for (SddId id : unique_[h]) {
    const Node& n = nodes_[id];
    if (n.vtree == node.vtree && n.lit_code == node.lit_code &&
        n.elements == node.elements) {
      return id;
    }
  }
  const SddId id = static_cast<SddId>(nodes_.size());
  nodes_.push_back(std::move(node));
  unique_[h].push_back(id);
  // The returned id stays valid even when this charge trips the budget;
  // the in-flight operation notices via interrupted() and unwinds.
  ChargeAndCheck(1);
  return id;
}

SddId SddManager::LiteralNode(Lit l) {
  TBC_CHECK(l.var() < num_vars());
  Node n;
  n.vtree = vtree_.LeafOfVar(l.var());
  n.lit_code = l.code();
  return Intern(std::move(n));
}

SddId SddManager::MakeDecision(VtreeId v,
                               std::vector<std::pair<SddId, SddId>> elements) {
  // Drop ⊥ primes.
  std::erase_if(elements, [](const auto& e) { return e.first == 0; });
  // Interrupted sub-applies return ⊥, so a partition can legitimately
  // empty out mid-unwind; the result is discarded by the caller anyway.
  if (elements.empty() && interrupted_) return False();
  TBC_CHECK_MSG(!elements.empty(), "decision node with empty partition");
  // Compress: disjoin primes that share a sub.
  std::sort(elements.begin(), elements.end(),
            [](const auto& a, const auto& b) { return a.second < b.second; });
  std::vector<std::pair<SddId, SddId>> compressed;
  for (const auto& [p, s] : elements) {
    if (!compressed.empty() && compressed.back().second == s) {
      compressed.back().first = Disjoin(compressed.back().first, p);
    } else {
      compressed.push_back({p, s});
    }
  }
  // Trimming rule 1: {(⊤, s)} -> s.
  if (compressed.size() == 1) {
    TBC_DCHECK(compressed[0].first == True() || interrupted_);
    return compressed[0].second;
  }
  // Trimming rule 2: {(p, ⊤), (¬p, ⊥)} -> p.
  if (compressed.size() == 2) {
    // After sorting by sub, compressed[0].second < compressed[1].second.
    if (compressed[0].second == False() && compressed[1].second == True()) {
      return compressed[1].first;
    }
  }
  std::sort(compressed.begin(), compressed.end());
  Node n;
  n.vtree = v;
  n.elements = std::move(compressed);
  return Intern(std::move(n));
}

SddId SddManager::Negate(SddId f) {
  if (nodes_[f].negation != kInvalidSdd) return nodes_[f].negation;
  SddId result;
  if (IsLiteral(f)) {
    result = LiteralNode(~literal(f));
  } else {
    std::vector<std::pair<SddId, SddId>> elements = nodes_[f].elements;
    for (auto& [p, s] : elements) s = Negate(s);
    result = MakeDecision(nodes_[f].vtree, std::move(elements));
  }
  // Never cache negation links computed during an interrupted unwind (the
  // links are permanent; a bogus one would outlive ClearInterrupt()).
  if (interrupted_) return False();
  nodes_[f].negation = result;
  nodes_[result].negation = f;
  return result;
}

std::vector<std::pair<SddId, SddId>> SddManager::NormalizeTo(VtreeId v, SddId g) {
  TBC_DCHECK(!IsConstant(g));
  const VtreeId vg = nodes_[g].vtree;
  if (vtree_.IsAncestorOrSelf(vtree_.left(v), vg)) {
    return {{g, True()}, {Negate(g), False()}};
  }
  TBC_DCHECK(vtree_.IsAncestorOrSelf(vtree_.right(v), vg));
  return {{True(), g}};
}

SddId SddManager::Apply(Op op, SddId f, SddId g) {
  // Once interrupted, unwind in constant time per frame: every pending
  // apply collapses to ⊥ and the caller surfaces interrupt_status().
  if (interrupted_ || ChargeAndCheck(0)) return False();
  // Terminal cases.
  if (f == g) return f;
  if (op == Op::kAnd) {
    if (f == False() || g == False()) return False();
    if (f == True()) return g;
    if (g == True()) return f;
    if (nodes_[f].negation == g) return False();
  } else {
    if (f == True() || g == True()) return True();
    if (f == False()) return g;
    if (g == False()) return f;
    if (nodes_[f].negation == g) return True();
  }
  if (f > g) std::swap(f, g);
  const OpKey key{f | (static_cast<uint64_t>(g) << 32), static_cast<uint32_t>(op)};
  auto it = op_cache_.find(key);
  if (it != op_cache_.end()) return it->second;

  const VtreeId vf = nodes_[f].vtree;
  const VtreeId vg = nodes_[g].vtree;
  SddId result;
  if (vf == vg && vtree_.IsLeaf(vf)) {
    // Same-variable literals; equal/complement handled above, so this is
    // x op ¬x.
    result = op == Op::kAnd ? False() : True();
  } else {
    VtreeId v;
    std::vector<std::pair<SddId, SddId>> ef, eg;
    if (vf == vg) {
      v = vf;
      ef = nodes_[f].elements;
      eg = nodes_[g].elements;
    } else if (vtree_.IsAncestorOrSelf(vf, vg)) {
      v = vf;
      ef = nodes_[f].elements;
      eg = NormalizeTo(v, g);
    } else if (vtree_.IsAncestorOrSelf(vg, vf)) {
      v = vg;
      ef = NormalizeTo(v, f);
      eg = nodes_[g].elements;
    } else {
      v = vtree_.Lca(vf, vg);
      ef = NormalizeTo(v, f);
      eg = NormalizeTo(v, g);
    }
    // Cross product of the two partitions.
    std::vector<std::pair<SddId, SddId>> elements;
    elements.reserve(ef.size() * eg.size());
    for (const auto& [p1, s1] : ef) {
      for (const auto& [p2, s2] : eg) {
        const SddId p = Apply(Op::kAnd, p1, p2);
        if (p == False()) continue;
        elements.push_back({p, Apply(op, s1, s2)});
      }
    }
    result = MakeDecision(v, std::move(elements));
  }
  // Results computed during an interrupted unwind are meaningless; keep
  // them out of the op cache so a cleared manager stays correct.
  if (interrupted_) return False();
  op_cache_[key] = result;
  return result;
}

SddId SddManager::Conjoin(SddId f, SddId g) { return Apply(Op::kAnd, f, g); }
SddId SddManager::Disjoin(SddId f, SddId g) { return Apply(Op::kOr, f, g); }

SddId SddManager::Condition(SddId f, Lit l) {
  if (IsConstant(f)) return f;
  if (IsLiteral(f)) {
    const Lit x = literal(f);
    if (x == l) return True();
    if (x == ~l) return False();
    return f;
  }
  const VtreeId v = nodes_[f].vtree;
  const VtreeId leaf = vtree_.LeafOfVar(l.var());
  if (!vtree_.IsAncestorOrSelf(v, leaf)) return f;
  const OpKey key{f, 2u + l.code()};
  auto it = op_cache_.find(key);
  if (it != op_cache_.end()) return it->second;
  std::vector<std::pair<SddId, SddId>> elements = nodes_[f].elements;
  if (vtree_.IsAncestorOrSelf(vtree_.left(v), leaf)) {
    for (auto& [p, s] : elements) p = Condition(p, l);
  } else {
    for (auto& [p, s] : elements) s = Condition(s, l);
  }
  const SddId result = MakeDecision(v, std::move(elements));
  if (interrupted_) return False();
  op_cache_[key] = result;
  return result;
}

bool SddManager::Evaluate(SddId f, const Assignment& assignment) const {
  std::unordered_map<SddId, bool> memo;
  std::function<bool(SddId)> rec = [&](SddId g) -> bool {
    if (g == False()) return false;
    if (g == True()) return true;
    if (IsLiteral(g)) return Eval(literal(g), assignment);
    auto it = memo.find(g);
    if (it != memo.end()) return it->second;
    bool value = false;
    for (const auto& [p, s] : nodes_[g].elements) {
      if (rec(p)) {
        value = rec(s);  // exactly one prime is high
        break;
      }
    }
    memo.emplace(g, value);
    return value;
  };
  return rec(f);
}

size_t SddManager::Size(SddId f) const {
  size_t size = 0;
  std::unordered_map<SddId, bool> seen;
  std::vector<SddId> stack = {f};
  while (!stack.empty()) {
    const SddId g = stack.back();
    stack.pop_back();
    if (seen[g]) continue;
    seen[g] = true;
    if (!IsConstant(g) && !nodes_[g].elements.empty()) {
      size += nodes_[g].elements.size();
      for (const auto& [p, s] : nodes_[g].elements) {
        stack.push_back(p);
        stack.push_back(s);
      }
    }
  }
  return size;
}

size_t SddManager::NumDecisionNodes(SddId f) const {
  size_t count = 0;
  std::unordered_map<SddId, bool> seen;
  std::vector<SddId> stack = {f};
  while (!stack.empty()) {
    const SddId g = stack.back();
    stack.pop_back();
    if (seen[g]) continue;
    seen[g] = true;
    if (IsDecision(g)) {
      ++count;
      for (const auto& [p, s] : nodes_[g].elements) {
        stack.push_back(p);
        stack.push_back(s);
      }
    }
  }
  return count;
}

NnfId SddManager::ToNnf(SddId f, NnfManager& nnf) const {
  std::unordered_map<SddId, NnfId> memo;
  std::function<NnfId(SddId)> rec = [&](SddId g) -> NnfId {
    if (g == False()) return nnf.False();
    if (g == True()) return nnf.True();
    auto it = memo.find(g);
    if (it != memo.end()) return it->second;
    NnfId result;
    if (IsLiteral(g)) {
      result = nnf.Literal(literal(g));
    } else {
      std::vector<NnfId> parts;
      for (const auto& [p, s] : nodes_[g].elements) {
        parts.push_back(nnf.And(rec(p), rec(s)));
      }
      result = nnf.Or(std::move(parts));
    }
    memo.emplace(g, result);
    return result;
  };
  return rec(f);
}

BigUint SddManager::ModelCount(SddId f) {
  if (f == False()) return BigUint(0);
  NnfManager nnf;
  const NnfId root = ToNnf(f, nnf);
  return tbc::ModelCount(nnf, root, num_vars());
}

double SddManager::Wmc(SddId f, const WeightMap& weights) {
  if (f == False()) return 0.0;
  NnfManager nnf;
  const NnfId root = ToNnf(f, nnf);
  if (root == nnf.True()) {
    double r = 1.0;
    for (Var v = 0; v < num_vars(); ++v) r *= weights[Pos(v)] + weights[Neg(v)];
    return r;
  }
  return tbc::Wmc(nnf, root, weights);
}

}  // namespace tbc
