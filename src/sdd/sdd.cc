#include "sdd/sdd.h"

#include <algorithm>
#include <functional>

#include "base/check.h"
#include "base/hash.h"
#include "base/observability.h"
#include "base/random.h"
#include "nnf/queries.h"

namespace tbc {

namespace {

SddAutoMinimizeOptions& DefaultAutoMinimizeStorage() {
  static SddAutoMinimizeOptions options;
  return options;
}

}  // namespace

void SddManager::SetDefaultAutoMinimize(const SddAutoMinimizeOptions& options) {
  DefaultAutoMinimizeStorage() = options;
}

const SddAutoMinimizeOptions& SddManager::DefaultAutoMinimize() {
  return DefaultAutoMinimizeStorage();
}

SddManager::SddManager(Vtree vtree)
    : vtree_(std::move(vtree)), auto_minimize_(DefaultAutoMinimize()) {
  // Constants occupy ids 0 (⊥) and 1 (⊤).
  nodes_.push_back({kInvalidVtree, 0, {}, 1});
  nodes_.push_back({kInvalidVtree, 0, {}, 0});
  nodes_at_.resize(vtree_.num_nodes());
}

bool SddManager::ChargeAndCheck(uint64_t new_nodes) {
  if (interrupted_) return true;
  if (guard_ == nullptr) return false;
  Status s = new_nodes > 0 ? guard_->ChargeNodes(new_nodes) : guard_->Poll();
  if (!s.ok()) {
    interrupted_ = true;
    interrupt_status_ = std::move(s);
    return true;
  }
  return false;
}

uint64_t SddManager::NodeHash(const Node& node) const {
  uint64_t h = HashCombine(0, node.vtree);
  h = HashCombine(h, node.lit_code);
  for (const auto& [p, s] : node.elements) h = HashCombine(HashCombine(h, p), s);
  return HashU64(h);
}

SddId SddManager::Intern(Node node) {
  const uint64_t h = NodeHash(node);
  const uint32_t found = unique_.Find(h, [&](uint32_t id) {
    const Node& n = nodes_[id];
    return n.vtree == node.vtree && n.lit_code == node.lit_code &&
           n.elements == node.elements;
  });
  if (found != UniqueTable::kNpos) {
    TBC_COUNT("sdd.unique.hits");
    return found;
  }
  TBC_COUNT("sdd.nodes.created");
  const SddId id = static_cast<SddId>(nodes_.size());
  const bool decision = !node.elements.empty();
  const VtreeId label = node.vtree;
  nodes_.push_back(std::move(node));
  if (decision) nodes_at_[label].push_back(id);
  unique_.Insert(h, id);
  // The returned id stays valid even when this charge trips the budget;
  // the in-flight operation notices via interrupted() and unwinds.
  ChargeAndCheck(1);
  return id;
}

SddId SddManager::LiteralNode(Lit l) {
  TBC_CHECK(l.var() < num_vars());
  Node n;
  n.vtree = vtree_.LeafOfVar(l.var());
  n.lit_code = l.code();
  return Intern(std::move(n));
}

SddManager::BuiltDecision SddManager::BuildDecision(
    std::vector<std::pair<SddId, SddId>> elements) {
  BuiltDecision out;
  // Drop ⊥ primes.
  std::erase_if(elements, [](const auto& e) { return e.first == 0; });
  // Interrupted sub-applies return ⊥, so a partition can legitimately
  // empty out mid-unwind; the result is discarded by the caller anyway.
  if (elements.empty() && interrupted_) {
    out.trimmed = False();
    return out;
  }
  TBC_CHECK_MSG(!elements.empty(), "decision node with empty partition");
  // Compress: disjoin primes that share a sub.
  std::sort(elements.begin(), elements.end(),
            [](const auto& a, const auto& b) { return a.second < b.second; });
  std::vector<std::pair<SddId, SddId>> compressed;
  for (const auto& [p, s] : elements) {
    if (!compressed.empty() && compressed.back().second == s) {
      compressed.back().first = Disjoin(compressed.back().first, p);
    } else {
      compressed.push_back({p, s});
    }
  }
  // Trimming rule 1: {(⊤, s)} -> s.
  if (compressed.size() == 1) {
    TBC_DCHECK(compressed[0].first == True() || interrupted_);
    out.trimmed = compressed[0].second;
    return out;
  }
  // Trimming rule 2: {(p, ⊤), (¬p, ⊥)} -> p.
  if (compressed.size() == 2) {
    // After sorting by sub, compressed[0].second < compressed[1].second.
    if (compressed[0].second == False() && compressed[1].second == True()) {
      out.trimmed = compressed[1].first;
      return out;
    }
  }
  std::sort(compressed.begin(), compressed.end());
  out.elements = std::move(compressed);
  return out;
}

SddId SddManager::MakeDecision(VtreeId v,
                               std::vector<std::pair<SddId, SddId>> elements) {
  BuiltDecision built = BuildDecision(std::move(elements));
  if (built.trimmed != kInvalidSdd) return built.trimmed;
  Node n;
  n.vtree = v;
  n.elements = std::move(built.elements);
  return Intern(std::move(n));
}

SddId SddManager::Negate(SddId f) {
  if (nodes_[f].negation != kInvalidSdd) return nodes_[f].negation;
  SddId result;
  if (IsLiteral(f)) {
    result = LiteralNode(~literal(f));
  } else {
    std::vector<std::pair<SddId, SddId>> elements = nodes_[f].elements;
    for (auto& [p, s] : elements) s = Negate(s);
    result = MakeDecision(nodes_[f].vtree, std::move(elements));
  }
  // Never cache negation links computed during an interrupted unwind (the
  // links are permanent; a bogus one would outlive ClearInterrupt()).
  if (interrupted_) return False();
  nodes_[f].negation = result;
  nodes_[result].negation = f;
  return result;
}

std::vector<std::pair<SddId, SddId>> SddManager::NormalizeTo(VtreeId v, SddId g) {
  TBC_DCHECK(!IsConstant(g));
  const VtreeId vg = nodes_[g].vtree;
  if (vtree_.IsAncestorOrSelf(vtree_.left(v), vg)) {
    return {{g, True()}, {Negate(g), False()}};
  }
  TBC_DCHECK(vtree_.IsAncestorOrSelf(vtree_.right(v), vg));
  return {{True(), g}};
}

SddId SddManager::Apply(Op op, SddId f, SddId g) {
  // Once interrupted, unwind in constant time per frame: every pending
  // apply collapses to ⊥ and the caller surfaces interrupt_status().
  if (interrupted_ || ChargeAndCheck(0)) return False();
  // Terminal cases.
  if (f == g) return f;
  if (op == Op::kAnd) {
    if (f == False() || g == False()) return False();
    if (f == True()) return g;
    if (g == True()) return f;
    if (nodes_[f].negation == g) return False();
  } else {
    if (f == True() || g == True()) return True();
    if (f == False()) return g;
    if (g == False()) return f;
    if (nodes_[f].negation == g) return True();
  }
  if (f > g) std::swap(f, g);
  TBC_COUNT("sdd.apply.calls");
  const OpKey key{f | (static_cast<uint64_t>(g) << 32), static_cast<uint32_t>(op)};
  if (const OpCacheEntry* hit = op_cache_.Find(key)) {
    // Node ids are stable function handles: in-place edits rewrite a
    // node's partition but never its function, relabels keep identity,
    // and trims forward to an equal function. Cached results therefore
    // survive vtree edits as function-level facts; UsableCacheResult
    // rejects the two structural hazards (see OpCacheEntry) and chases
    // reclaimed results to their canonical survivors.
    const SddId r = UsableCacheResult(*hit);
    if (r != kInvalidSdd) {
      TBC_COUNT("sdd.apply.cache_hits");
      return r;
    }
  }
  TBC_COUNT("sdd.apply.cache_misses");

  const VtreeId vf = nodes_[f].vtree;
  const VtreeId vg = nodes_[g].vtree;
  SddId result;
  if (vf == vg && vtree_.IsLeaf(vf)) {
    // Same-variable literals; equal/complement handled above, so this is
    // x op ¬x.
    result = op == Op::kAnd ? False() : True();
  } else {
    VtreeId v;
    std::vector<std::pair<SddId, SddId>> ef, eg;
    if (vf == vg) {
      v = vf;
      ef = nodes_[f].elements;
      eg = nodes_[g].elements;
    } else if (vtree_.IsAncestorOrSelf(vf, vg)) {
      v = vf;
      ef = nodes_[f].elements;
      eg = NormalizeTo(v, g);
    } else if (vtree_.IsAncestorOrSelf(vg, vf)) {
      v = vg;
      ef = NormalizeTo(v, f);
      eg = nodes_[g].elements;
    } else {
      v = vtree_.Lca(vf, vg);
      ef = NormalizeTo(v, f);
      eg = NormalizeTo(v, g);
    }
    // Cross product of the two partitions.
    std::vector<std::pair<SddId, SddId>> elements;
    elements.reserve(ef.size() * eg.size());
    for (const auto& [p1, s1] : ef) {
      for (const auto& [p2, s2] : eg) {
        const SddId p = Apply(Op::kAnd, p1, p2);
        if (p == False()) continue;
        elements.push_back({p, Apply(op, s1, s2)});
      }
    }
    result = MakeDecision(v, std::move(elements));
  }
  // Results computed during an interrupted unwind are meaningless; keep
  // them out of the op cache so a cleared manager stays correct.
  if (interrupted_) return False();
  op_cache_.Insert(key, {result, in_edit_ ? edit_epoch_ : 0u});
  return result;
}

SddId SddManager::Conjoin(SddId f, SddId g) { return Apply(Op::kAnd, f, g); }
SddId SddManager::Disjoin(SddId f, SddId g) { return Apply(Op::kOr, f, g); }

SddId SddManager::Condition(SddId f, Lit l) {
  if (IsConstant(f)) return f;
  if (IsLiteral(f)) {
    const Lit x = literal(f);
    if (x == l) return True();
    if (x == ~l) return False();
    return f;
  }
  const VtreeId v = nodes_[f].vtree;
  const VtreeId leaf = vtree_.LeafOfVar(l.var());
  if (!vtree_.IsAncestorOrSelf(v, leaf)) return f;
  const OpKey key{f, 2u + l.code()};
  // Same epoch/Resolve discipline as the Apply hit path: entries survive
  // vtree edits as function-level facts, but the result id may be dead.
  if (const OpCacheEntry* hit = op_cache_.Find(key)) {
    const SddId r = UsableCacheResult(*hit);
    if (r != kInvalidSdd) return r;
  }
  std::vector<std::pair<SddId, SddId>> elements = nodes_[f].elements;
  if (vtree_.IsAncestorOrSelf(vtree_.left(v), leaf)) {
    for (auto& [p, s] : elements) p = Condition(p, l);
  } else {
    for (auto& [p, s] : elements) s = Condition(s, l);
  }
  const SddId result = MakeDecision(v, std::move(elements));
  if (interrupted_) return False();
  op_cache_.Insert(key, {result, in_edit_ ? edit_epoch_ : 0u});
  return result;
}

// ---- In-place dynamic vtree minimization [Choi & Darwiche 2013] ----

std::vector<SddId> SddManager::CollectAt(VtreeId v) {
  std::vector<SddId>& bucket = nodes_at_[v];
  std::vector<SddId> live;
  live.reserve(bucket.size());
  for (const SddId id : bucket) {
    // Aborted edits truncate node storage, so buckets can hold ids past the
    // end (and, after id reuse, duplicates); filter and compact.
    if (id >= nodes_.size()) continue;
    const Node& n = nodes_[id];
    if (n.vtree != v || n.forward != kInvalidSdd || n.elements.empty()) {
      continue;
    }
    live.push_back(id);
  }
  std::sort(live.begin(), live.end());
  live.erase(std::unique(live.begin(), live.end()), live.end());
  bucket = live;
  return live;
}

void SddManager::Relabel(SddId id, VtreeId v) {
  Node& n = nodes_[id];
  unique_.Erase(NodeHash(n), id);
  n.vtree = v;
  unique_.Insert(NodeHash(n), id);
  nodes_at_[v].push_back(id);
}

void SddManager::AbortEdit(EditKind kind, VtreeId v, VtreeId child,
                           const std::vector<SddId>& relabeled, size_t mark) {
  TBC_COUNT("sdd.minimize.aborts");
  // Cache entries minted during this edit mention ids >= mark that are
  // about to be truncated (and later reused); marking the epoch aborted
  // in EndEdit(false) rejects them all in O(1), no cache scan needed.
  // Fresh nodes may have minted negation links into pre-existing nodes;
  // those links would dangle once the fresh half is truncated away.
  for (size_t id = mark; id < nodes_.size(); ++id) {
    const SddId neg = nodes_[id].negation;
    if (neg != kInvalidSdd && neg < mark &&
        nodes_[neg].negation == static_cast<SddId>(id)) {
      nodes_[neg].negation = kInvalidSdd;
    }
    unique_.Erase(NodeHash(nodes_[id]), static_cast<uint32_t>(id));
  }
  nodes_.resize(mark);
  // Stale bucket entries past the truncation point are filtered lazily by
  // CollectAt; only the relabels and the vtree move need explicit undo.
  for (const SddId id : relabeled) Relabel(id, child);
  bool ok = false;
  switch (kind) {
    case EditKind::kRotateRight:
      ok = vtree_.RotateLeftAt(v);
      break;
    case EditKind::kRotateLeft:
      ok = vtree_.RotateRightAt(v);
      break;
    case EditKind::kSwap:
      ok = vtree_.SwapChildrenAt(v);
      break;
  }
  TBC_CHECK_MSG(ok, "in-place edit rollback failed to undo the vtree move");
}

SddEditResult SddManager::Edit(EditKind kind, VtreeId v) {
  SddEditResult res;
  if (interrupted_ || vtree_.IsLeaf(v)) return res;
  // Subtree roots, captured before the vtree mutates. Rotations move the
  // middle subtree b across the v/child edge; swap exchanges a and b.
  VtreeId child = kInvalidVtree;
  VtreeId a = kInvalidVtree, b = kInvalidVtree;
  switch (kind) {
    case EditKind::kRotateRight:  // v=(child=(a,b), c) -> v=(a, child=(b,c))
      child = vtree_.left(v);
      if (vtree_.IsLeaf(child)) return res;
      a = vtree_.left(child);
      b = vtree_.right(child);
      break;
    case EditKind::kRotateLeft:  // v=(a, child=(b,c)) -> v=(child=(a,b), c)
      child = vtree_.right(v);
      if (vtree_.IsLeaf(child)) return res;
      a = vtree_.left(v);
      b = vtree_.left(child);
      break;
    case EditKind::kSwap:  // v=(a,b) -> v=(b,a)
      a = vtree_.left(v);
      b = vtree_.right(v);
      break;
  }
  const std::vector<SddId> at_v = CollectAt(v);
  const std::vector<SddId> at_child =
      child == kInvalidVtree ? std::vector<SddId>{} : CollectAt(child);
  // No op-cache purge: opening an edit epoch hides pre-edit entries whose
  // results sit inside the fragment being rewritten (below-v results stay
  // visible) from the applies below, in O(1). Scanning the cache per edit
  // would cost O(capacity) — it dominated minimization before removal.
  BeginEdit(v);

  bool ok = false;
  switch (kind) {
    case EditKind::kRotateRight:
      ok = vtree_.RotateRightAt(v);
      break;
    case EditKind::kRotateLeft:
      ok = vtree_.RotateLeftAt(v);
      break;
    case EditKind::kSwap:
      ok = vtree_.SwapChildrenAt(v);
      break;
  }
  TBC_CHECK(ok);

  // Nodes at the rotated child keep their elements verbatim: for RR their
  // (primes over a, subs over b) split is still legal at the new v=(a,
  // (b,c)); for RL their (primes over b, subs over c) split is still legal
  // at the new v=((a,b), c). Relabeling preserves canonicity because such
  // nodes never essentially depend on the side they do not mention, while
  // every stored v-labeled node depends on both sides of v.
  for (const SddId id : at_child) Relabel(id, v);
  res.relabeled = at_child.size();

  // Phase 1 (interruptible): recompute the partition of every old v-labeled
  // node for the new variable split. All applies here run strictly inside
  // v's new subtrees — they never create or read v-labeled nodes — so an
  // abort can roll back by truncating at `mark`.
  const size_t mark = nodes_.size();
  struct Plan {
    SddId id;
    BuiltDecision built;
  };
  std::vector<Plan> plans;
  plans.reserve(at_v.size());
  for (const SddId id : at_v) {
    // Applies below can reallocate nodes_; copy the element list first.
    const std::vector<std::pair<SddId, SddId>> elems = nodes_[id].elements;
    std::vector<std::pair<SddId, SddId>> raw;
    if (kind == EditKind::kRotateLeft) {
      // (p over a, s over b∪c): expand s as a decision over the old child
      // {(q over b, u over c)}; the direct product (p∧q, u) has pairwise
      // disjoint primes, so no refinement is needed. ⊥ subs must be kept —
      // dropping them would break prime exhaustiveness.
      for (const auto& [p, s] : elems) {
        std::vector<std::pair<SddId, SddId>> se;
        if (IsConstant(s)) {
          se = {{True(), s}};
        } else if (nodes_[s].vtree == v) {
          se = nodes_[s].elements;  // relabeled old-child node
        } else if (vtree_.IsAncestorOrSelf(b, nodes_[s].vtree)) {
          se = {{s, True()}, {Negate(s), False()}};
        } else {
          se = {{True(), s}};  // c-side
        }
        for (const auto& [q, u] : se) {
          const SddId np = Conjoin(p, q);
          if (np == False()) continue;
          raw.push_back({np, u});
        }
      }
    } else {
      // RR: (p over a∪b, s over c) → expand p as a decision over the old
      // child {(q over a, r over b)} giving triples (q, r∧s). Swap:
      // elements flip to triples (s, p) directly. Either way the first
      // components need not be disjoint across triples, so rebuild the
      // partition by refinement.
      std::vector<std::pair<SddId, SddId>> triples;
      for (const auto& [p, s] : elems) {
        if (kind == EditKind::kSwap) {
          if (s == False()) continue;  // contributes nothing
          triples.push_back({s, p});
          continue;
        }
        std::vector<std::pair<SddId, SddId>> pe;
        if (nodes_[p].vtree == v) {
          pe = nodes_[p].elements;  // relabeled old-child node
        } else if (vtree_.IsAncestorOrSelf(a, nodes_[p].vtree)) {
          pe = {{p, True()}, {Negate(p), False()}};
        } else {
          pe = {{True(), p}};  // b-side
        }
        for (const auto& [q, r] : pe) {
          triples.push_back({q, Conjoin(r, s)});
        }
      }
      // Partition refinement: split each cell (π, w) on the triple's guard
      // q, accumulating the guarded function u into the inside half.
      std::vector<std::pair<SddId, SddId>> cells = {{True(), False()}};
      for (const auto& [q, u] : triples) {
        std::vector<std::pair<SddId, SddId>> next;
        next.reserve(cells.size() * 2);
        for (const auto& [pi, w] : cells) {
          const SddId inside = Conjoin(pi, q);
          if (inside != False()) next.push_back({inside, Disjoin(w, u)});
          const SddId outside = Conjoin(pi, Negate(q));
          if (outside != False()) next.push_back({outside, w});
        }
        cells = std::move(next);
      }
      raw = std::move(cells);
    }
    if (interrupted_) {
      AbortEdit(kind, v, child, at_child, mark);
      EndEdit(/*committed=*/false);
      res.aborted = true;
      return res;
    }
    plans.push_back({id, BuildDecision(std::move(raw))});
    if (interrupted_) {
      AbortEdit(kind, v, child, at_child, mark);
      EndEdit(/*committed=*/false);
      res.aborted = true;
      return res;
    }
  }

  // Phase 2 (pure table surgery, no guard charges). Erase every planned
  // node under its old content hash first, then commit: rewritten nodes
  // get their new partitions and re-enter the unique table; nodes whose
  // new canonical form trimmed to an existing node are reclaimed behind a
  // forwarding pointer.
  for (const Plan& plan : plans) {
    unique_.Erase(NodeHash(nodes_[plan.id]), plan.id);
  }
  for (Plan& plan : plans) {
    Node& n = nodes_[plan.id];
    if (plan.built.trimmed != kInvalidSdd) {
      n.forward = plan.built.trimmed;
      n.elements.clear();
      n.elements.shrink_to_fit();
      ++dead_count_;
      ++res.reclaimed;
    } else {
      n.elements = std::move(plan.built.elements);
      unique_.Insert(NodeHash(n), plan.id);
      ++res.rewritten;
    }
  }

  if (res.reclaimed > 0) {
    // Negation links may now cross into reclaimed nodes; re-link the
    // canonical survivors (functions are preserved by forwarding, so the
    // resolved pair really are each other's negations).
    for (const SddId id : at_v) {
      const SddId neg = nodes_[id].negation;
      if (neg == kInvalidSdd) continue;
      if (!IsDead(id) && !IsDead(neg)) continue;
      const SddId rid = Resolve(id);
      const SddId rneg = Resolve(neg);
      if (!IsConstant(rid)) {
        SddId& link = nodes_[rid].negation;
        if (link == kInvalidSdd || IsDead(link)) link = rneg;
      }
      if (!IsConstant(rneg)) {
        SddId& link = nodes_[rneg].negation;
        if (link == kInvalidSdd || IsDead(link)) link = rid;
      }
    }
    // Only nodes labeled at strict ancestors of v can reference v-labeled
    // nodes in their elements; rewrite those references to the survivors.
    // Substitution preserves each element's function, so no re-compression
    // or trimming can trigger — only the content hash changes.
    for (VtreeId anc = vtree_.parent(v); anc != kInvalidVtree;
         anc = vtree_.parent(anc)) {
      for (const SddId id : CollectAt(anc)) {
        Node& n = nodes_[id];
        bool stale = false;
        for (const auto& [p, s] : n.elements) {
          if (IsDead(p) || IsDead(s)) {
            stale = true;
            break;
          }
        }
        if (!stale) continue;
        unique_.Erase(NodeHash(n), id);
        for (auto& [p, s] : n.elements) {
          p = Resolve(p);
          s = Resolve(s);
        }
        std::sort(n.elements.begin(), n.elements.end());
        unique_.Insert(NodeHash(n), id);
      }
    }
  }

  EndEdit(/*committed=*/true);
  res.applied = true;
  if (kind == EditKind::kSwap) {
    TBC_COUNT("sdd.minimize.swaps");
  } else {
    TBC_COUNT("sdd.minimize.rotations");
  }
  TBC_COUNT_N("sdd.minimize.nodes_reclaimed", res.reclaimed);
  return res;
}

SddEditResult SddManager::RotateRightInPlace(VtreeId v) {
  return Edit(EditKind::kRotateRight, v);
}
SddEditResult SddManager::RotateLeftInPlace(VtreeId v) {
  return Edit(EditKind::kRotateLeft, v);
}
SddEditResult SddManager::SwapChildrenInPlace(VtreeId v) {
  return Edit(EditKind::kSwap, v);
}

SddId SddManager::GarbageCollect(SddId root) {
  TBC_CHECK_MSG(!in_edit_, "GarbageCollect may not run inside an edit");
  root = Resolve(root);
  const size_t live_before = live_node_count();
  SddManager fresh(vtree_);
  fresh.auto_minimize_ = auto_minimize_;
  SddId new_root = root;
  if (!IsConstant(root)) {
    // Postorder over the resolved reachable DAG (0 = unseen, 1 = expanded,
    // 2 = emitted), replaying each node into the fresh manager. Children
    // are resolved before the visit so the walk only ever touches live
    // nodes; replayed decisions are already canonical, so MakeDecision
    // re-interns the identical node under a fresh id.
    std::vector<uint8_t> state(nodes_.size(), 0);
    std::vector<SddId> map(nodes_.size(), kInvalidSdd);
    std::vector<SddId> stack = {root};
    while (!stack.empty()) {
      const SddId g = stack.back();
      if (state[g] == 2) {
        stack.pop_back();
        continue;
      }
      if (state[g] == 0) {
        state[g] = 1;
        if (IsDecision(g)) {
          for (const auto& [p, s] : nodes_[g].elements) {
            const SddId rp = Resolve(p);
            const SddId rs = Resolve(s);
            if (!IsConstant(rp) && state[rp] == 0) stack.push_back(rp);
            if (!IsConstant(rs) && state[rs] == 0) stack.push_back(rs);
          }
        }
        continue;
      }
      state[g] = 2;
      stack.pop_back();
      if (IsLiteral(g)) {
        map[g] = fresh.LiteralNode(literal(g));
        continue;
      }
      std::vector<std::pair<SddId, SddId>> elems;
      elems.reserve(nodes_[g].elements.size());
      for (const auto& [p, s] : nodes_[g].elements) {
        const SddId rp = Resolve(p);
        const SddId rs = Resolve(s);
        elems.push_back(
            {IsConstant(rp) ? rp : map[rp], IsConstant(rs) ? rs : map[rs]});
      }
      map[g] = fresh.MakeDecision(nodes_[g].vtree, std::move(elems));
    }
    new_root = map[root];
  }
  const size_t fires = auto_minimize_fires_;
  Guard* const held = guard_;
  *this = std::move(fresh);
  guard_ = held;
  auto_minimize_fires_ = fires;
  last_minimized_live_ = live_node_count();
  TBC_COUNT_N("sdd.gc.nodes_dropped", live_before - live_node_count());
  return new_root;
}

SddId SddManager::GreedyMinimizePass(SddId root, size_t ops, uint64_t seed) {
  root = Resolve(root);
  if (IsConstant(root) || interrupted_) return root;
  const size_t initial = Size(root);
  size_t best = initial;
  Rng rng(seed);
  const size_t num_vt = vtree_.num_nodes();
  Guard* const outer = guard_;
  // Per-edit work cap, mirroring MinimizeSddInPlace: an edit that interns
  // more nodes than the manager held live at pass start cannot be a local
  // improvement worth its cost; abort it and move on. Without this, one
  // root-adjacent rotation can cost as much as a recompile. The cap is
  // snapshotted ONCE: edits themselves inflate the live count (rewritten
  // generations, undo generations), and recomputing the cap per edit lets
  // that inflation raise the budget of every later edit — a feedback loop
  // that made aggressive auto-minimize during compile ~100x slower than
  // the compile itself. (Live count, not Size(root): mid-compile the
  // table holds other intermediate SDDs whose v-labeled nodes the edit
  // must rewrite too.)
  const uint64_t edit_node_cap =
      static_cast<uint64_t>(live_node_count()) + 256;
  for (size_t i = 0; i < ops && !interrupted_; ++i) {
    const VtreeId v = static_cast<VtreeId>(rng.Below(num_vt));
    const EditKind kind = static_cast<EditKind>(rng.Below(3));
    Budget inner_budget;
    inner_budget.max_nodes = edit_node_cap;
    if (outer != nullptr && outer->has_deadline()) {
      inner_budget.timeout_ms = outer->RemainingMs();
      if (inner_budget.timeout_ms <= 0.0) break;
    }
    Guard inner(inner_budget);
    guard_ = &inner;
    const bool applied = Edit(kind, v).applied;
    guard_ = outer;
    if (interrupted_) {
      // The inner guard inherits the outer deadline; only a genuine outer
      // trip (cancellation / deadline) should stop the whole pass.
      ClearInterrupt();
      if (outer != nullptr) {
        Status s = outer->Check();
        if (!s.ok()) {
          interrupted_ = true;
          interrupt_status_ = std::move(s);
          break;
        }
      }
      continue;
    }
    if (!applied) continue;
    root = Resolve(root);
    const size_t size = Size(root);
    if (size <= best) {
      best = size;
      continue;
    }
    // Reject: every edit has an exact inverse at the same node. The undo
    // runs unguarded — it shrinks back to a size the table already held.
    const EditKind inverse = kind == EditKind::kRotateRight
                                 ? EditKind::kRotateLeft
                             : kind == EditKind::kRotateLeft
                                 ? EditKind::kRotateRight
                                 : EditKind::kSwap;
    guard_ = nullptr;
    if (Edit(inverse, v).applied) root = Resolve(root);
    guard_ = outer;
  }
  if (initial > 0 && best <= initial) {
    TBC_OBSERVE_VALUE("sdd.minimize.size_reduction_pct",
                      (100 * (initial - best)) / initial);
  }
  return root;
}

SddId SddManager::MaybeAutoMinimize(SddId root) {
  root = Resolve(root);
  if (auto_minimize_.mode == SddMinimizeMode::kOff || interrupted_ ||
      IsConstant(root)) {
    return root;
  }
  const size_t live = live_node_count();
  if (live < auto_minimize_.min_live_nodes) return root;
  const auto floor = static_cast<size_t>(auto_minimize_.growth_ratio *
                                         static_cast<double>(last_minimized_live_));
  if (live < floor) return root;
  TBC_COUNT("sdd.minimize.auto_triggers");
  ++auto_minimize_fires_;
  // Collect before editing (the caller's root is the only outstanding id
  // at a safe point, so the rebuild is legal). Most of the growth that
  // tripped the trigger is dead intermediates; without this the pass
  // spends its per-edit budget rewriting garbage, and its own rewrite
  // generations compound across firings.
  root = GarbageCollect(root);
  root = GreedyMinimizePass(root, auto_minimize_.ops_per_pass,
                            0x5ddau * 0x9e3779b9u + auto_minimize_fires_);
  last_minimized_live_ = live_node_count();
  return root;
}

namespace {

// Reachable node ids in topological order (children strictly before
// parents). Freshly compiled SDDs satisfy "child id < parent id", but
// in-place vtree edits rewrite a node's elements without renumbering, so
// a low-id decision node may reference higher-id children — the dense
// passes below need an explicit postorder, not sorted ids.
std::vector<SddId> ReachableAscending(SddId f, size_t num_nodes,
                                      const std::function<bool(SddId)>& is_decision,
                                      const std::function<const std::vector<std::pair<SddId, SddId>>&(SddId)>& elements) {
  // 0 = unseen, 1 = expanded (children pushed), 2 = emitted.
  std::vector<uint8_t> state(num_nodes, 0);
  std::vector<SddId> order;
  std::vector<SddId> stack = {f};
  while (!stack.empty()) {
    const SddId g = stack.back();
    if (state[g] == 2) {  // duplicate stack entry; already emitted
      stack.pop_back();
      continue;
    }
    if (state[g] == 0) {
      state[g] = 1;  // leave on the stack; emit after the children
      if (is_decision(g)) {
        for (const auto& [p, s] : elements(g)) {
          if (state[p] == 0) stack.push_back(p);
          if (state[s] == 0) stack.push_back(s);
        }
      }
      continue;
    }
    state[g] = 2;  // second visit: every child above has been emitted
    order.push_back(g);
    stack.pop_back();
  }
  return order;
}

}  // namespace

bool SddManager::Evaluate(SddId f, const Assignment& assignment) const {
  if (f == False()) return false;
  if (f == True()) return true;
  const std::vector<SddId> order = ReachableAscending(
      f, nodes_.size(), [this](SddId g) { return IsDecision(g); },
      [this](SddId g) -> const std::vector<std::pair<SddId, SddId>>& {
        return nodes_[g].elements;
      });
  std::vector<int8_t> value(nodes_.size(), 0);
  value[True()] = 1;
  for (const SddId g : order) {
    if (IsConstant(g)) continue;
    if (IsLiteral(g)) {
      value[g] = Eval(literal(g), assignment) ? 1 : 0;
      continue;
    }
    for (const auto& [p, s] : nodes_[g].elements) {
      if (value[p]) {
        value[g] = value[s];  // exactly one prime is high
        break;
      }
    }
  }
  return value[f] == 1;
}

size_t SddManager::Size(SddId f) const {
  size_t size = 0;
  std::vector<uint8_t> seen(nodes_.size(), 0);
  std::vector<SddId> stack = {f};
  seen[f] = 1;
  while (!stack.empty()) {
    const SddId g = stack.back();
    stack.pop_back();
    if (!IsConstant(g) && !nodes_[g].elements.empty()) {
      size += nodes_[g].elements.size();
      for (const auto& [p, s] : nodes_[g].elements) {
        if (!seen[p]) {
          seen[p] = 1;
          stack.push_back(p);
        }
        if (!seen[s]) {
          seen[s] = 1;
          stack.push_back(s);
        }
      }
    }
  }
  return size;
}

size_t SddManager::NumDecisionNodes(SddId f) const {
  size_t count = 0;
  std::vector<uint8_t> seen(nodes_.size(), 0);
  std::vector<SddId> stack = {f};
  seen[f] = 1;
  while (!stack.empty()) {
    const SddId g = stack.back();
    stack.pop_back();
    if (IsDecision(g)) {
      ++count;
      for (const auto& [p, s] : nodes_[g].elements) {
        if (!seen[p]) {
          seen[p] = 1;
          stack.push_back(p);
        }
        if (!seen[s]) {
          seen[s] = 1;
          stack.push_back(s);
        }
      }
    }
  }
  return count;
}

NnfId SddManager::ToNnf(SddId f, NnfManager& nnf) const {
  if (f == False()) return nnf.False();
  if (f == True()) return nnf.True();
  const std::vector<SddId> order = ReachableAscending(
      f, nodes_.size(), [this](SddId g) { return IsDecision(g); },
      [this](SddId g) -> const std::vector<std::pair<SddId, SddId>>& {
        return nodes_[g].elements;
      });
  std::vector<NnfId> memo(nodes_.size(), kInvalidNnf);
  memo[False()] = nnf.False();
  memo[True()] = nnf.True();
  for (const SddId g : order) {
    if (IsConstant(g)) continue;
    if (IsLiteral(g)) {
      memo[g] = nnf.Literal(literal(g));
      continue;
    }
    std::vector<NnfId> parts;
    parts.reserve(nodes_[g].elements.size());
    for (const auto& [p, s] : nodes_[g].elements) {
      parts.push_back(nnf.And(memo[p], memo[s]));
    }
    memo[g] = nnf.Or(std::move(parts));
  }
  return memo[f];
}

BigUint SddManager::ModelCount(SddId f) {
  if (f == False()) return BigUint(0);
  NnfManager nnf;
  const NnfId root = ToNnf(f, nnf);
  return tbc::ModelCount(nnf, root, num_vars());
}

double SddManager::Wmc(SddId f, const WeightMap& weights) {
  if (f == False()) return 0.0;
  NnfManager nnf;
  const NnfId root = ToNnf(f, nnf);
  if (root == nnf.True()) {
    double r = 1.0;
    for (Var v = 0; v < num_vars(); ++v) r *= weights[Pos(v)] + weights[Neg(v)];
    return r;
  }
  return tbc::Wmc(nnf, root, weights);
}

}  // namespace tbc
