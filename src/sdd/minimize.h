#ifndef TBC_SDD_MINIMIZE_H_
#define TBC_SDD_MINIMIZE_H_

#include <cstdint>
#include <optional>

#include "base/guard.h"
#include "base/random.h"
#include "logic/cnf.h"
#include "sdd/sdd.h"
#include "vtree/vtree.h"

/// Feature probe: this revision applies vtree operations in place on the
/// live SDD (benches and tools built against older revisions test for it).
#define TBC_SDD_HAS_INPLACE_MINIMIZE 1

namespace tbc {

/// Result of a vtree search.
struct MinimizeResult {
  Vtree vtree;
  size_t size = 0;          // SDD size under the returned vtree
  size_t initial_size = 0;  // SDD size under the initial vtree
  size_t iterations = 0;    // neighbors evaluated
  /// True when the guard stopped the search early. The result is still the
  /// best vtree found so far (graceful degradation), except when even the
  /// initial compilation was interrupted — then size == 0 and the initial
  /// vtree is returned unevaluated.
  bool interrupted = false;
  Status interrupt_status;  // why, when interrupted
};

/// Result of an in-place minimization pass over a live SDD.
struct SddInPlaceMinimizeResult {
  SddId root = kInvalidSdd;  // re-homed root (chase of the input root)
  size_t size = 0;           // SDD size of `root` after the pass
  size_t initial_size = 0;   // SDD size before the pass
  size_t iterations = 0;     // edits attempted (including inapplicable ones)
  size_t applied = 0;        // edits that committed
  size_t aborted = 0;        // edits rolled back by the per-edit work cap
  bool interrupted = false;  // the manager's guard stopped the search
  Status interrupt_status;
};

/// SDD size minimization by searching vtree space (dynamic vtree
/// minimization [Choi & Darwiche 2013], which the paper cites for SDD
/// sizes ranging "from linear to exponential" with the vtree).
///
/// Stochastic greedy local search over the classic vtree operations —
/// left rotation, right rotation, and child swap at a random node —
/// applied *in place* on the compiled SDD via the manager's edit API, so
/// each step costs work proportional to the touched vtree fragment rather
/// than a full recompilation. A step is kept when the SDD does not grow
/// and undone via its exact inverse otherwise.
///
/// Each edit runs under a private node cap derived from the best size so
/// far (a fragment rewrite that grows past the cap can never be accepted,
/// so it is aborted and rolled back — counted in `aborted`). The manager's
/// attached guard, if any, is the outer budget: its deadline/cancellation
/// is polled between edits and bounds every edit, and on interruption the
/// best-so-far root is returned with `interrupted` set.
SddInPlaceMinimizeResult MinimizeSddInPlace(SddManager& mgr, SddId root,
                                            size_t budget, uint64_t seed);

/// Compiles `cnf` once under `initial`, garbage-collects the manager down
/// to the root's reachable subgraph (edits rewrite every node at their
/// vtree label, and post-compile most of those are dead intermediates),
/// and then minimizes in place; the returned vtree is the incumbent's
/// (the live SDD stays canonical for it, so recompiling under the
/// returned vtree reproduces `size`).
MinimizeResult MinimizeVtree(const Cnf& cnf, const Vtree& initial,
                             size_t budget, uint64_t seed);

/// Resource-governed variant: the guard's deadline/cancellation is polled
/// between edits and inside every fragment rewrite. Returns best-so-far on
/// interruption; when even the initial compilation was interrupted,
/// size == 0 and the initial vtree is returned unevaluated.
MinimizeResult MinimizeVtree(const Cnf& cnf, const Vtree& initial,
                             size_t budget, uint64_t seed, Guard& guard);

/// Recompilation-based search over the same neighborhood: every candidate
/// vtree is evaluated by compiling the CNF from scratch. Kept as the
/// cross-check oracle for the in-place path — tests compare the two and
/// `kc_cli --minimize-recompile` exposes it — and as the reference
/// implementation of the search itself.
MinimizeResult MinimizeVtreeByRecompile(const Cnf& cnf, const Vtree& initial,
                                        size_t budget, uint64_t seed,
                                        Guard& guard);

/// One vtree operation applied functionally (returns the rotated copy), or
/// std::nullopt when the shape does not permit the move — rotating at a
/// leaf, or rotating a node whose relevant child is a leaf. (These used to
/// return the *unchanged* vtree on a shape mismatch, which silently turned
/// an inapplicable move into an expensive no-op candidate.)
std::optional<Vtree> RotateRight(const Vtree& vtree, VtreeId at);
std::optional<Vtree> RotateLeft(const Vtree& vtree, VtreeId at);
std::optional<Vtree> SwapChildren(const Vtree& vtree, VtreeId at);

}  // namespace tbc

#endif  // TBC_SDD_MINIMIZE_H_
