#include "serve/server.h"

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <optional>

#include "analysis/structure/forecast.h"
#include "base/fault.h"
#include "base/guard.h"
#include "base/observability.h"
#include "nnf/queries.h"

namespace tbc::serve {

namespace {

constexpr int kPollTickMs = 100;  // how often blocked loops notice stopping_

// Work budget for the admission forecast (DynGraph pair-inspection units,
// see elimination.h). Request CNFs are untrusted and elimination
// simulation is cubic-ish on dense primal graphs, so the analysis that
// protects workers from hopeless compiles must itself be bounded: at this
// cap an adversarially dense CNF costs well under a second of analysis
// before it is admitted un-forecast (the Guard still bounds its compile),
// while every plausibly-compilable CNF completes far below it.
constexpr uint64_t kForecastWorkBudget = uint64_t{1} << 24;

Response ErrorResponse(const Status& st) {
  Response r;
  r.status = st.code();
  r.message = st.message();
  return r;
}

}  // namespace

Server::Server(const ServerOptions& opts)
    : opts_(opts), cache_(opts.cache_capacity, opts.store_dir) {}

Result<std::unique_ptr<Server>> Server::Start(const ServerOptions& opts) {
  std::unique_ptr<Server> server(new Server(opts));
  int port = -1;
  auto listener = Listen(opts.address, /*backlog=*/128, &port);
  if (!listener.ok()) return listener.status();
  server->listener_ = std::move(*listener);
  server->port_ = port;
  // Restore spilled artifacts before the acceptor starts: warm-start runs
  // single-threaded, so the restored managers' caches are written before
  // any query thread can share them.
  server->cache_.WarmStart();
  server->acceptor_ = std::thread([s = server.get()] { s->AcceptLoop(); });
  return server;
}

Server::~Server() { Shutdown(); }

void Server::Shutdown() {
  if (stopped_.exchange(true)) return;
  stopping_.store(true, std::memory_order_release);
  adm_cv_.notify_all();
  if (acceptor_.joinable()) acceptor_.join();
  listener_.Close();
  // Connection threads notice stopping_ at their next poll tick; in-flight
  // requests run to completion under their own guards first.
  std::vector<std::unique_ptr<Conn>> conns;
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    conns.swap(conns_);
  }
  for (auto& c : conns) {
    if (c->thread.joinable()) c->thread.join();
  }
  if (opts_.address.is_unix()) ::unlink(opts_.address.uds_path.c_str());
}

size_t Server::active_connections() const {
  std::lock_guard<std::mutex> lock(conn_mu_);
  return open_conns_;
}

size_t Server::executing_requests() const {
  std::lock_guard<std::mutex> lock(adm_mu_);
  return executing_;
}

void Server::ReapFinishedLocked() {
  for (auto it = conns_.begin(); it != conns_.end();) {
    if ((*it)->done.load(std::memory_order_acquire)) {
      if ((*it)->thread.joinable()) (*it)->thread.join();
      it = conns_.erase(it);
    } else {
      ++it;
    }
  }
}

void Server::AcceptLoop() {
  while (!stopping_.load(std::memory_order_acquire)) {
    auto conn = Accept(listener_, kPollTickMs);
    if (!conn.ok()) {
      if (conn.status().code() == StatusCode::kDeadlineExceeded) continue;
      if (stopping_.load(std::memory_order_acquire)) return;
      TBC_COUNT("serve.accept.errors");
      continue;
    }
    TBC_COUNT("serve.connections.accepted");
    std::lock_guard<std::mutex> lock(conn_mu_);
    ReapFinishedLocked();
    if (open_conns_ >= opts_.max_connections) {
      // Refuse in-line: a typed overload frame, then close. Cheap enough
      // to not need a thread, and keeps the connection count bounded.
      TBC_COUNT("serve.connections.refused");
      SendFrame(*conn,
                ErrorResponse(Status::Overloaded("connection limit reached"))
                    .Serialize());
      continue;  // Socket destructor closes
    }
    auto c = std::make_unique<Conn>();
    Conn* raw = c.get();
    ++open_conns_;
    TBC_GAUGE_ADD("serve.connections.open", 1);
    raw->thread = std::thread([this, raw, sock = std::move(*conn)]() mutable {
      HandleConnection(std::move(sock));
      raw->done.store(true, std::memory_order_release);
    });
    conns_.push_back(std::move(c));
  }
}

Status Server::Admit(Guard& guard) {
  std::unique_lock<std::mutex> lock(adm_mu_);
  if (stopping_.load(std::memory_order_acquire)) {
    return Status::Unavailable("server draining");
  }
  if (TBC_FAULT_POINT("serve.queue.overload")) {
    TBC_COUNT("serve.faults.injected");
    TBC_COUNT("serve.requests.shed");
    return Status::Overloaded("injected queue overload");
  }
  if (executing_ < opts_.num_workers) {
    ++executing_;
    return Status::Ok();
  }
  if (queued_ >= opts_.max_queue) {
    TBC_COUNT("serve.requests.shed");
    return Status::Overloaded("queue full (" +
                              std::to_string(opts_.max_queue) + " waiting)");
  }
  ++queued_;
  TBC_GAUGE_ADD("serve.queue.depth", 1);
  Status st = Status::Ok();
  while (true) {
    if (stopping_.load(std::memory_order_acquire)) {
      st = Status::Unavailable("server draining");
      break;
    }
    st = guard.Check();
    if (!st.ok()) break;  // deadline lapsed while queued: typed refusal
    if (executing_ < opts_.num_workers) {
      ++executing_;
      break;
    }
    adm_cv_.wait_for(lock, std::chrono::milliseconds(20));
  }
  --queued_;
  TBC_GAUGE_ADD("serve.queue.depth", -1);
  return st;
}

void Server::Release() {
  {
    std::lock_guard<std::mutex> lock(adm_mu_);
    --executing_;
  }
  adm_cv_.notify_one();
}

void Server::HandleConnection(Socket conn) {
  int idle_ms = 0;
  std::string payload;
  while (true) {
    if (stopping_.load(std::memory_order_acquire)) break;
    Status st = RecvFrame(conn, opts_.max_frame_bytes,
                          /*idle_timeout_ms=*/kPollTickMs, opts_.io_timeout_ms,
                          &payload);
    if (st.code() == StatusCode::kDeadlineExceeded &&
        st.message() == "idle timeout") {
      idle_ms += kPollTickMs;
      if (opts_.idle_timeout_ms > 0 && idle_ms >= opts_.idle_timeout_ms) break;
      continue;  // quiet connection; re-check the stop flag
    }
    idle_ms = 0;
    if (st.code() == StatusCode::kUnavailable) break;  // peer closed cleanly
    if (!st.ok()) {
      // Bad magic, oversized frame, truncation, or a mid-frame stall: the
      // stream is unsynchronized and cannot be trusted further. Answer
      // with a typed refusal (best-effort) and close.
      TBC_COUNT("serve.requests.malformed");
      SendFrame(conn, ErrorResponse(st).Serialize());
      break;
    }

    if (TBC_FAULT_POINT("serve.frame.garbage")) {
      // Simulate wire corruption of an inbound payload.
      TBC_COUNT("serve.faults.injected");
      for (size_t i = 0; i < payload.size(); i += 7) payload[i] ^= 0x5a;
      if (payload.empty()) payload = "garbage";
    }

    auto parsed = Request::Parse(payload);
    if (!parsed.ok()) {
      // The framing was intact, so the stream is still aligned: refuse
      // this request but keep the connection.
      TBC_COUNT("serve.requests.malformed");
      if (!SendFrame(conn, ErrorResponse(parsed.status()).Serialize()).ok()) {
        break;
      }
      continue;
    }
    const Request& req = *parsed;
    TBC_COUNT("serve.requests.accepted");

    Budget budget;
    budget.timeout_ms = req.timeout_ms > 0
                            ? std::min(req.timeout_ms, opts_.max_timeout_ms)
                            : opts_.default_timeout_ms;
    budget.max_nodes = req.max_nodes;
    budget.max_decisions = req.max_decisions;
    Guard guard(budget);

    Response resp;
    Status admitted = Admit(guard);
    if (!admitted.ok()) {
      resp = ErrorResponse(admitted);
    } else {
      TBC_GAUGE_ADD("serve.requests.executing", 1);
      resp = Execute(req, guard);
      TBC_GAUGE_ADD("serve.requests.executing", -1);
      Release();
    }
    if (resp.ok()) {
      TBC_COUNT("serve.requests.ok");
    } else {
      TBC_COUNT("serve.requests.refused");
    }

    const std::string frame = EncodeFrame(resp.Serialize());
    if (TBC_FAULT_POINT("serve.frame.truncate")) {
      // Simulate the server dying mid-response: half a frame, then close.
      TBC_COUNT("serve.faults.injected");
      SendRaw(conn, std::string_view(frame).substr(0, frame.size() / 2));
      break;
    }
    if (!SendRaw(conn, frame).ok()) break;  // peer gone
  }
  std::lock_guard<std::mutex> lock(conn_mu_);
  --open_conns_;
  TBC_GAUGE_ADD("serve.connections.open", -1);
}

Response Server::Execute(const Request& req, Guard& guard) {
  TBC_SPAN("serve.request");
  if (TBC_FAULT_POINT("serve.request.delay")) {
    // Simulated slow request: holds its execution slot to build queue
    // pressure (and to keep the drain test's in-flight window open).
    TBC_COUNT("serve.faults.injected");
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }

  Response resp;
  switch (req.op) {
    case Op::kPing:
      return resp;
    case Op::kStats:
      resp.stats_json = Observability::Global().RenderJson();
      return resp;
    default:
      break;
  }

  bool cache_hit = false;
  std::shared_ptr<const Artifact> cached;
  std::optional<Cnf> parsed_cnf;  // reused by the compile path below
  if (opts_.max_forecast_width > 0) {
    // Forecast admission (rule structure.width/structure.forecast): price
    // the compile with a bounded static pass and refuse hopeless requests
    // before they consume any compile Guard budget. Runs after Admit, so
    // at most num_workers analyses execute concurrently, and only on a
    // cache miss — a cached artifact's compile is sunk cost.
    cached = cache_.Lookup(req.cnf_text);
    if (cached == nullptr) {
      auto parsed = Cnf::ParseDimacs(req.cnf_text);
      if (!parsed.ok()) return ErrorResponse(parsed.status());
      parsed_cnf = std::move(parsed).value();
      // The analysis itself must not become the cheaper DoS vector: the
      // CNF is untrusted, and elimination simulation is far from linear
      // on dense primal graphs (one wide clause is already a clique). So
      // min-fill stays off and everything else runs under a fixed
      // deterministic work budget; an over-budget analysis degrades to
      // the linear passes plus the degeneracy lower bound. Whatever the
      // forecast cannot price is admitted — the Guard remains the
      // enforcer, exactly as before admission control existed.
      StructureOptions sopts;
      sopts.compute_backbone = false;  // routing needs widths only
      sopts.try_minfill = false;
      sopts.work_budget = kForecastWorkBudget;
      const StructureReport forecast = AnalyzeCnfStructure(*parsed_cnf, sopts);
      // Refusal is sound from either end of the bracket: a completed
      // order's width is achievable, and the degeneracy lower-bounds
      // every order — if even it exceeds the cap, the true width does too.
      if (forecast.width_lower_bound > opts_.max_forecast_width ||
          forecast.best_width() > opts_.max_forecast_width) {
        const uint32_t predicted =
            std::max(forecast.best_width(), forecast.width_lower_bound);
        TBC_COUNT("serve.requests.forecast_refused");
        return ErrorResponse(Status::RefusedByForecast(
            "predicted induced width " + std::to_string(predicted) +
            " exceeds the server cap " +
            std::to_string(opts_.max_forecast_width) +
            " (lower bound " + std::to_string(forecast.width_lower_bound) +
            "); compile forecast refused before any budget was consumed"));
      }
    }
  }
  auto artifact =
      cached != nullptr
          ? Result<std::shared_ptr<const Artifact>>(cached)
          : cache_.GetOrCompile(req.cnf_text, guard, &cache_hit,
                                parsed_cnf ? &*parsed_cnf : nullptr);
  if (cached != nullptr) cache_hit = true;
  if (!artifact.ok()) return ErrorResponse(artifact.status());
  const Artifact& art = **artifact;
  resp.artifact = art.key;
  resp.cache_hit = cache_hit;
  resp.circuit_nodes = art.nodes;
  resp.circuit_edges = art.edges;

  WeightMap weights(art.num_vars);
  for (const auto& [dimacs, w] : req.weights) {
    const uint64_t var = static_cast<uint64_t>(std::abs(dimacs));
    if (var == 0 || var > art.num_vars) {
      return ErrorResponse(Status::InvalidInput(
          "weight literal " + std::to_string(dimacs) + " out of range (" +
          std::to_string(art.num_vars) + " variables)"));
    }
    weights.Set(Lit::FromDimacs(dimacs), w);
  }

  // Queries run serially on the warmed immutable artifact (no ThreadPool):
  // concurrency lives at the request level, and serial kernels make the
  // response trivially bit-identical at every worker count.
  switch (req.op) {
    case Op::kCompile:
      resp.count = art.count.ToString();
      return resp;
    case Op::kCount:
      resp.count = art.count.ToString();
      return resp;
    case Op::kWmc: {
      auto wmc = WmcBounded(*art.mgr, art.root, weights, guard);
      if (!wmc.ok()) return ErrorResponse(wmc.status());
      resp.has_wmc = true;
      resp.wmc = *wmc;
      return resp;
    }
    case Op::kMar: {
      // The artifact's smooth root was built (and its caches warmed) at
      // compile time; MarginalWmc re-smooths internally, which is a pure
      // cache replay here.
      const std::vector<double> m =
          MarginalWmc(*art.mgr, art.root, weights);
      Status st = guard.Check();
      if (!st.ok()) return ErrorResponse(st);
      resp.marginals.reserve(m.size());
      for (size_t code = 0; code < m.size(); ++code) {
        resp.marginals.emplace_back(
            Lit::FromCode(static_cast<uint32_t>(code)).ToDimacs(), m[code]);
      }
      return resp;
    }
    case Op::kMpe: {
      if (art.count.IsZero()) {
        return ErrorResponse(
            Status::InvalidInput("MPE undefined: CNF is unsatisfiable"));
      }
      auto mpe =
          MaxWmcBounded(*art.mgr, art.root, weights, art.num_vars, guard);
      if (!mpe.ok()) return ErrorResponse(mpe.status());
      resp.has_mpe = true;
      resp.mpe_weight = mpe->weight;
      resp.mpe.reserve(art.num_vars);
      for (size_t v = 0; v < art.num_vars; ++v) {
        resp.mpe.push_back(
            Lit(static_cast<Var>(v), mpe->assignment[v]).ToDimacs());
      }
      return resp;
    }
    default:
      return ErrorResponse(Status::InvalidInput("unhandled op"));
  }
}

}  // namespace tbc::serve
