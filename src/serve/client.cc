#include "serve/client.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <thread>

#include "base/fault.h"
#include "base/observability.h"

namespace tbc::serve {

namespace {

using Clock = std::chrono::steady_clock;

double ElapsedMs(Clock::time_point since) {
  return std::chrono::duration<double, std::milli>(Clock::now() - since)
      .count();
}

/// Every op is an idempotent pure query (compile results are cached by
/// content hash), so any failure to obtain a well-formed response —
/// connect refused, connection lost, truncated or garbage reply, recv
/// timeout — is safe to retry.
bool RetryableTransport(const Status& st) {
  switch (st.code()) {
    case StatusCode::kUnavailable:
    case StatusCode::kDeadlineExceeded:
    case StatusCode::kInvalidInput:
      return true;
    default:
      return false;
  }
}

}  // namespace

Result<Response> Client::CallOnce(const Request& req, double remaining_ms) {
  if (!conn_.valid()) {
    auto c = Connect(opts_.address);
    if (!c.ok()) return c.status();
    conn_ = std::move(*c);
  }

  // Deadline propagation: ask the server for at most what we will wait.
  Request r = req;
  if (opts_.deadline_ms > 0) {
    r.timeout_ms =
        r.timeout_ms > 0 ? std::min(r.timeout_ms, remaining_ms) : remaining_ms;
  }
  std::string frame = EncodeFrame(r.Serialize());

  Status sent = Status::Ok();
  if (TBC_FAULT_POINT("client.frame.garbage")) {
    // Valid framing, corrupted payload: the server must answer with a
    // typed kInvalidInput response, not crash or hang.
    TBC_COUNT("client.faults.injected");
    for (size_t i = kFrameHeaderBytes; i < frame.size(); i += 5) {
      frame[i] = static_cast<char>(frame[i] ^ 0x5a);
    }
    sent = SendRaw(conn_, frame);
  } else if (TBC_FAULT_POINT("client.frame.truncate")) {
    // Half a frame, then hang up: the server must drop the connection
    // without leaking the partial read.
    TBC_COUNT("client.faults.injected");
    SendRaw(conn_, std::string_view(frame).substr(0, frame.size() / 2));
    conn_.Close();
    return Status::Unavailable("injected truncated send");
  } else if (TBC_FAULT_POINT("client.frame.slow")) {
    // Dribble the first bytes: exercises the server's io timeout path
    // without tripping it (the stall stays well under io_timeout_ms).
    TBC_COUNT("client.faults.injected");
    const size_t slow = std::min<size_t>(frame.size(), 16);
    for (size_t i = 0; i < slow && sent.ok(); ++i) {
      sent = SendRaw(conn_, std::string_view(frame).substr(i, 1));
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    if (sent.ok()) {
      sent = SendRaw(conn_, std::string_view(frame).substr(slow));
    }
  } else {
    sent = SendRaw(conn_, frame);
  }
  if (!sent.ok()) {
    conn_.Close();
    return sent;
  }

  // Wait for the reply up to the remaining client deadline (0 = forever).
  int idle_to = 0;
  if (opts_.deadline_ms > 0) {
    idle_to = std::max(1, static_cast<int>(std::ceil(remaining_ms)));
  }
  std::string payload;
  Status st = RecvFrame(conn_, opts_.max_frame_bytes, idle_to,
                        opts_.io_timeout_ms, &payload);
  if (!st.ok()) {
    conn_.Close();
    return st;
  }
  auto resp = Response::Parse(payload);
  if (!resp.ok()) {
    conn_.Close();  // the stream can no longer be trusted
    return resp.status();
  }
  return resp;
}

Result<Response> Client::Call(const Request& req) {
  last_attempts_ = 0;
  const auto start = Clock::now();
  double backoff = opts_.retry.initial_backoff_ms;
  Status last = Status::Unavailable("no attempts made");

  for (int attempt = 0; attempt < std::max(1, opts_.retry.max_attempts);
       ++attempt) {
    double remaining = opts_.deadline_ms > 0
                           ? opts_.deadline_ms - ElapsedMs(start)
                           : 0.0;
    if (opts_.deadline_ms > 0 && remaining <= 0) {
      return Status::DeadlineExceeded(
          "client deadline exhausted after " +
          std::to_string(last_attempts_) + " attempt(s); last: " +
          std::string(last.message()));
    }
    ++last_attempts_;
    if (attempt > 0) TBC_COUNT("client.retries");

    auto resp = CallOnce(req, remaining);
    if (resp.ok()) {
      // Server-sent load-shed / drain refusals are retryable by design;
      // every other typed status (including refusals) is the answer.
      if (resp->status != StatusCode::kOverloaded &&
          resp->status != StatusCode::kUnavailable) {
        return resp;
      }
      last = resp->ToStatus();
    } else {
      if (!RetryableTransport(resp.status())) return resp.status();
      last = resp.status();
    }

    if (attempt + 1 < opts_.retry.max_attempts) {
      double sleep_ms = backoff;
      if (opts_.deadline_ms > 0) {
        sleep_ms = std::min(sleep_ms, opts_.deadline_ms - ElapsedMs(start));
      }
      if (sleep_ms > 0) {
        std::this_thread::sleep_for(
            std::chrono::duration<double, std::milli>(sleep_ms));
      }
      backoff = std::min(backoff * opts_.retry.backoff_multiplier,
                         opts_.retry.max_backoff_ms);
    }
  }
  return Status::Error(last.code(),
                       std::string(last.message()) + " (after " +
                           std::to_string(last_attempts_) + " attempts)");
}

}  // namespace tbc::serve
