#ifndef TBC_SERVE_SERVER_H_
#define TBC_SERVE_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "base/result.h"
#include "serve/artifact_cache.h"
#include "serve/protocol.h"
#include "serve/wire.h"

namespace tbc::serve {

/// Server tuning knobs. Every limit is a hard bound: the server never
/// holds unbounded memory on behalf of clients.
struct ServerOptions {
  Address address;              // unix:PATH or tcp (port 0 = ephemeral)
  size_t num_workers = 4;       // max concurrently *executing* requests
  size_t max_queue = 16;        // admitted-but-waiting cap; beyond = shed
  size_t max_connections = 64;  // open connections; beyond = refuse + close
  size_t cache_capacity = 8;    // compiled artifacts kept (LRU)
  size_t max_frame_bytes = kDefaultMaxFrameBytes;
  double default_timeout_ms = 10'000.0;  // when the request names none
  double max_timeout_ms = 60'000.0;      // cap on client-requested budgets
  int idle_timeout_ms = 0;      // close connections idle this long (0 = keep)
  int io_timeout_ms = 5'000;    // mid-frame stall cap (slow-loris bound)
  /// Forecast-based admission control (0 = off): compile-bearing requests
  /// whose CNF's predicted induced width exceeds this cap are refused with
  /// a typed kRefusedByForecast *before* any compile starts, so a hopeless
  /// request costs the server one *bounded* analysis pass instead of a
  /// full Guard budget. The pass runs min-fill-free under a fixed
  /// deterministic work budget — on adversarially dense CNFs it degrades
  /// to the linear scans plus a degeneracy bound rather than stalling a
  /// worker, and requests it cannot price are admitted. Already-cached
  /// artifacts bypass the check (their compile cost is already paid). The
  /// forecast is advisory — the Guard still bounds everything admitted.
  uint32_t max_forecast_width = 0;
  /// Persistent circuit store directory ("" = off). When set, every
  /// compiled artifact is spilled to `<store_dir>/<key>.tbc` and Start()
  /// warm-starts the cache from the directory before accepting
  /// connections — a restarted server answers previously compiled CNFs
  /// from mmap with zero compile activity (DESIGN.md "Persistent circuit
  /// store"). The directory must exist and is trusted for writes; files
  /// in it are still checksum-validated before being served.
  std::string store_dir;
};

/// The knowledge-compilation service (ROADMAP "KC-as-a-service"): a
/// long-lived daemon that compiles each distinct CNF once — keyed by
/// content hash — and then answers WMC/MAR/MPE/count queries against the
/// shared immutable artifact in linear time.
///
/// Robustness contract (DESIGN.md "Serving layer"):
///   - Admission control: at most `num_workers` requests execute, at most
///     `max_queue` wait; everything beyond is shed with a typed
///     kOverloaded refusal, never queued without bound.
///   - Every request runs under its own Guard (deadline + node/decision
///     caps), from min(client timeout, max_timeout_ms).
///   - Every wire byte is adversarial: malformed frames yield typed
///     kInvalidInput responses or a closed connection, never a crash.
///   - Graceful drain: Shutdown() stops accepting, refuses new requests
///     with kUnavailable, lets in-flight requests finish, joins every
///     thread. SIGTERM handling in the daemon binary calls Shutdown().
///   - Queries never share a ThreadPool across requests: parallelism is
///     across requests (worker threads), each query runs serially on the
///     warmed artifact, so results are bit-identical at any worker count.
class Server {
 public:
  /// Binds, starts the acceptor, returns the running server. Typed errors
  /// for bind/listen failures.
  static Result<std::unique_ptr<Server>> Start(const ServerOptions& opts);

  ~Server();

  /// Graceful drain; idempotent. Returns when every connection thread has
  /// been joined.
  void Shutdown();

  /// Bound TCP port (ephemeral resolved), or -1 for unix sockets.
  int port() const { return port_; }
  const ServerOptions& options() const { return opts_; }

  /// Test-visible gauges.
  size_t active_connections() const;
  size_t executing_requests() const;
  size_t cached_artifacts() const { return cache_.size(); }

 private:
  explicit Server(const ServerOptions& opts);

  void AcceptLoop();
  void HandleConnection(Socket conn);
  /// Admission control: reserve an execution slot or produce a typed
  /// refusal (kOverloaded when shed, kUnavailable when draining, the
  /// guard's refusal if its deadline lapses while queued).
  Status Admit(Guard& guard);
  void Release();
  /// Executes one admitted request (op dispatch) under `guard`.
  Response Execute(const Request& req, Guard& guard);

  struct Conn {
    std::thread thread;
    std::atomic<bool> done{false};
  };
  void ReapFinishedLocked();

  const ServerOptions opts_;
  Socket listener_;
  int port_ = -1;
  std::atomic<bool> stopping_{false};
  std::atomic<bool> stopped_{false};
  ArtifactCache cache_;
  std::thread acceptor_;

  mutable std::mutex conn_mu_;
  std::vector<std::unique_ptr<Conn>> conns_;
  size_t open_conns_ = 0;

  mutable std::mutex adm_mu_;
  std::condition_variable adm_cv_;
  size_t executing_ = 0;
  size_t queued_ = 0;
};

}  // namespace tbc::serve

#endif  // TBC_SERVE_SERVER_H_
