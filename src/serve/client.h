#ifndef TBC_SERVE_CLIENT_H_
#define TBC_SERVE_CLIENT_H_

#include <cstddef>
#include <string>

#include "base/result.h"
#include "serve/protocol.h"
#include "serve/wire.h"

namespace tbc::serve {

/// Client retry policy. Every op is an idempotent pure query, so all
/// *transport* failures are retryable: connect refused, connection lost,
/// truncated or garbage replies, recv timeouts — plus the server's own
/// kOverloaded (load-shed) and kUnavailable (draining) responses. Any
/// other typed server response (kInvalidInput, budget refusals) IS the
/// answer and surfaces immediately — retrying a request the server
/// deterministically refuses only adds load.
struct RetryPolicy {
  int max_attempts = 4;
  double initial_backoff_ms = 25.0;
  double backoff_multiplier = 2.0;
  double max_backoff_ms = 1'000.0;
};

struct ClientOptions {
  Address address;
  RetryPolicy retry;
  /// Overall client-side deadline across all attempts (connect + send +
  /// wait), propagated to the server in each request's timeout_ms so the
  /// server never works past the client's patience. 0 = no deadline.
  double deadline_ms = 30'000.0;
  size_t max_frame_bytes = kDefaultMaxFrameBytes;
  int io_timeout_ms = 5'000;
};

/// Blocking client for the KC service. One connection, re-dialed lazily
/// after failures. Thread-compatible (external synchronization required).
class Client {
 public:
  explicit Client(const ClientOptions& opts) : opts_(opts) {}

  /// Sends the request, retrying per the policy. The request's timeout_ms
  /// is clamped to the remaining client deadline before each attempt
  /// (deadline propagation), so a retried request asks the server for
  /// less time, not the original budget again.
  ///
  /// Returns the server's Response (which may itself carry a typed
  /// non-kOk status); a Status error only when no well-formed response
  /// could be obtained within the policy (kUnavailable / kOverloaded /
  /// kDeadlineExceeded / kInvalidInput for an unparseable reply).
  Result<Response> Call(const Request& req);

  /// Number of wire attempts made by the last Call (>= 1).
  int last_attempts() const { return last_attempts_; }

 private:
  Result<Response> CallOnce(const Request& req, double remaining_ms);

  ClientOptions opts_;
  Socket conn_;
  int last_attempts_ = 0;
};

}  // namespace tbc::serve

#endif  // TBC_SERVE_CLIENT_H_
