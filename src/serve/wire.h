#ifndef TBC_SERVE_WIRE_H_
#define TBC_SERVE_WIRE_H_

#include <string>
#include <string_view>

#include "base/result.h"

namespace tbc::serve {

/// Thin POSIX socket layer under the serve protocol: RAII fds, connect /
/// listen over unix-domain and TCP sockets, and length-prefixed frame
/// send/receive with short-read/short-write loops.
///
/// Failure mapping (all typed, never fatal):
///   - kUnavailable      peer closed cleanly between frames, connection
///                       reset, or connect refused — retryable
///   - kInvalidInput     bad magic, oversized frame, or EOF mid-frame
///                       (truncated) — the stream cannot be trusted further
///   - kDeadlineExceeded poll timeout while waiting for frame bytes
///
/// Writes use MSG_NOSIGNAL, so a broken pipe surfaces as a typed
/// kUnavailable instead of SIGPIPE killing the process.

/// Move-only owning fd. Invalid when fd() < 0.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket() { Close(); }
  Socket(Socket&& o) noexcept : fd_(o.fd_) { o.fd_ = -1; }
  Socket& operator=(Socket&& o) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  int fd() const { return fd_; }
  bool valid() const { return fd_ >= 0; }
  void Close();
  /// Releases ownership without closing.
  int Release();

 private:
  int fd_ = -1;
};

/// A parsed server address: exactly one of uds_path / tcp is set.
struct Address {
  std::string uds_path;       // non-empty for unix-domain
  std::string tcp_host;       // for tcp; empty host = 127.0.0.1
  int tcp_port = -1;          // >= 0 for tcp

  bool is_unix() const { return !uds_path.empty(); }
};

/// Parses "unix:/path", "tcp:host:port", "tcp::port" or ":port".
Result<Address> ParseAddress(std::string_view spec);

/// Client connect (blocking). kUnavailable when the peer is not there.
Result<Socket> Connect(const Address& addr);

/// Server listen. For TCP, port 0 picks an ephemeral port; *bound_port
/// (optional) receives the actual one. For unix sockets a stale path is
/// unlinked first.
Result<Socket> Listen(const Address& addr, int backlog, int* bound_port);

/// Accepts one connection; `poll_timeout_ms` bounds the wait (so callers
/// can check a stop flag between polls). kDeadlineExceeded on timeout,
/// kUnavailable when the listener is closed under us.
Result<Socket> Accept(const Socket& listener, int poll_timeout_ms);

/// Sends one frame (header + payload), looping over short writes.
Status SendFrame(const Socket& s, std::string_view payload);

/// Receives one frame payload. `idle_timeout_ms` bounds the wait for the
/// first header byte (0 = wait forever); `io_timeout_ms` bounds every
/// subsequent poll once a frame has started (slow-loris cap).
Status RecvFrame(const Socket& s, size_t max_frame_bytes, int idle_timeout_ms,
                 int io_timeout_ms, std::string* payload);

/// Raw byte send with the same short-write handling (fault-injection
/// helpers: deliberately truncated or garbage frames).
Status SendRaw(const Socket& s, std::string_view bytes);

}  // namespace tbc::serve

#endif  // TBC_SERVE_WIRE_H_
