#include "serve/artifact_cache.h"

#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <filesystem>
#include <optional>
#include <vector>

#include "base/fault.h"
#include "base/hash.h"
#include "base/observability.h"
#include "compiler/ddnnf_compiler.h"
#include "logic/cnf.h"
#include "nnf/properties.h"
#include "nnf/queries.h"
#include "store/store.h"

namespace tbc::serve {

namespace {

std::string KeyOf(const std::string& cnf_text) {
  const ContentHash h = HashBytes(cnf_text.data(), cnf_text.size());
  char buf[33];
  std::snprintf(buf, sizeof(buf), "%016" PRIx64 "%016" PRIx64, h.hi, h.lo);
  return buf;
}

/// Restores one spilled artifact from a `.tbc` file. Returns nullptr (with
/// the reason counted) if the file fails store validation, lacks the
/// embedded CNF, or does not hash to its own filename key. Warms the
/// mapped manager's side caches exactly as Build() does, so the restored
/// artifact honours the same share-after-warm contract.
std::shared_ptr<const Artifact> RestoreFromStore(const std::string& path,
                                                 const std::string& stem) {
  auto loaded = LoadCircuitStore(path);
  if (!loaded.ok()) {
    TBC_COUNT("serve.store.checksum_failures");
    return nullptr;
  }
  auto artifact = std::make_shared<Artifact>();
  artifact->cnf_text = std::string(loaded->store->cnf_text());
  artifact->key = KeyOf(artifact->cnf_text);
  if (artifact->cnf_text.empty() || artifact->key != stem) {
    // A valid store that is not the spill of the CNF its name claims —
    // renamed, truncated-and-rewritten, or foreign. Never serve it under
    // that key.
    TBC_COUNT("serve.store.key_mismatches");
    return nullptr;
  }
  artifact->root = loaded->root;
  artifact->num_vars = loaded->store->num_vars();
  artifact->from_store = true;
  NnfManager& mgr = *loaded->mgr;
  artifact->count = loaded->store->has_model_count()
                        ? loaded->store->model_count()
                        : ModelCount(mgr, artifact->root, artifact->num_vars);
  // Same warm sequence as Build(): varsets, level schedule, count memo,
  // smoothed root (appended to the overlay past the mapped range).
  mgr.VarSet(artifact->root);
  mgr.ScheduleCached(artifact->root);
  mgr.StoreModelCount(artifact->root, artifact->num_vars, artifact->count);
  artifact->smooth_root = Smooth(mgr, artifact->root, artifact->num_vars);
  mgr.VarSet(artifact->smooth_root);
  artifact->nodes = mgr.NumNodesBelow(artifact->root);
  artifact->edges = mgr.CircuitSize(artifact->root);
  artifact->mgr = std::move(loaded->mgr);
  TBC_COUNT("serve.store.restores");
  return artifact;
}

}  // namespace

void ArtifactCache::Spill(const Artifact& artifact) const {
  StoreWriteOptions options;
  options.cnf_text = artifact.cnf_text;
  options.model_count = &artifact.count;
  options.num_vars = artifact.num_vars;
  const std::string path = store_dir_ + "/" + artifact.key + ".tbc";
  const Status st =
      WriteCircuitStore(*artifact.mgr, artifact.root, path, options);
  if (!st.ok()) {
    // Best-effort: a full disk must not fail the request — the artifact
    // still serves from memory, it just will not survive a restart.
    TBC_COUNT("serve.store.spill_failures");
    return;
  }
  TBC_COUNT("serve.store.spills");
}

size_t ArtifactCache::WarmStart() {
  if (store_dir_.empty()) return 0;
  std::error_code ec;
  std::vector<std::filesystem::path> files;
  for (const auto& entry :
       std::filesystem::directory_iterator(store_dir_, ec)) {
    if (entry.path().extension() == ".tbc") files.push_back(entry.path());
  }
  std::sort(files.begin(), files.end());
  size_t restored = 0;
  for (const auto& file : files) {
    if (restored >= capacity_) break;
    auto artifact = RestoreFromStore(file.string(), file.stem().string());
    if (artifact == nullptr) continue;
    std::lock_guard<std::mutex> lock(mu_);
    auto slot = std::make_shared<Slot>();
    slot->artifact = std::move(artifact);
    slot->done = true;
    slot->last_use = ++use_clock_;
    slots_.emplace(slot->artifact->key, std::move(slot));
    ++restored;
  }
  return restored;
}

Result<std::shared_ptr<const Artifact>> ArtifactCache::Build(
    const std::string& cnf_text, Guard& guard, const Cnf* parsed) {
  TBC_SPAN("serve.compile");
  if (TBC_FAULT_POINT("serve.request.alloc")) {
    TBC_COUNT("serve.faults.injected");
    return Status::Error(StatusCode::kInternal,
                         "injected allocation failure while staging compile");
  }
  std::optional<Cnf> owned;
  if (parsed == nullptr) {
    auto reparsed = Cnf::ParseDimacs(cnf_text);
    if (!reparsed.ok()) return reparsed.status();
    owned = std::move(reparsed).value();
  }
  const Cnf& cnf = parsed != nullptr ? *parsed : *owned;

  auto artifact = std::make_shared<Artifact>();
  artifact->cnf_text = cnf_text;
  artifact->key = KeyOf(cnf_text);
  artifact->mgr = std::make_unique<NnfManager>();
  artifact->num_vars = cnf.num_vars();

  if (TBC_FAULT_POINT("serve.compile.cancel")) {
    TBC_COUNT("serve.faults.injected");
    guard.Cancel();
  }
  DdnnfCompiler compiler;
  auto compiled = compiler.CompileBounded(cnf, *artifact->mgr, guard);
  if (!compiled.ok()) return compiled.status();
  artifact->root = *compiled;

  // Warm every lazily-written manager cache single-threaded, so queries on
  // the shared artifact are pure reads (see Artifact doc comment).
  NnfManager& mgr = *artifact->mgr;
  mgr.VarSet(artifact->root);
  mgr.ScheduleCached(artifact->root);
  auto count =
      ModelCountBounded(mgr, artifact->root, artifact->num_vars, guard);
  if (!count.ok()) return count.status();
  artifact->count = std::move(count).value();
  artifact->smooth_root = Smooth(mgr, artifact->root, artifact->num_vars);
  mgr.VarSet(artifact->smooth_root);
  artifact->nodes = mgr.NumNodesBelow(artifact->root);
  artifact->edges = mgr.CircuitSize(artifact->root);
  return std::shared_ptr<const Artifact>(std::move(artifact));
}

Result<std::shared_ptr<const Artifact>> ArtifactCache::GetOrCompile(
    const std::string& cnf_text, Guard& guard, bool* cache_hit,
    const Cnf* parsed) {
  if (cache_hit != nullptr) *cache_hit = false;
  const std::string key = KeyOf(cnf_text);

  std::shared_ptr<Slot> slot;
  bool owner = false;
  {
    std::unique_lock<std::mutex> lock(mu_);
    auto it = slots_.find(key);
    if (it == slots_.end()) {
      slot = std::make_shared<Slot>();
      slots_.emplace(key, slot);
      owner = true;
      TBC_COUNT("serve.cache.misses");
    } else {
      slot = it->second;
      if (!slot->done) TBC_COUNT("serve.cache.inflight_joins");
    }
    if (!owner) {
      // Join the in-flight compile (or read the finished slot), bounded by
      // this request's own deadline/cancellation.
      while (!slot->done) {
        const auto tick = std::chrono::milliseconds(20);
        done_cv_.wait_for(lock, tick);
        Status s = guard.Check();
        if (!s.ok()) return s;
      }
      if (slot->failed) return slot->error;
      if (slot->artifact->cnf_text != cnf_text) {
        // 128-bit hash collision: two different CNFs, one key. Degrade to
        // an uncached compile — never alias.
        TBC_COUNT("serve.cache.collisions");
        lock.unlock();
        return Build(cnf_text, guard, parsed);
      }
      slot->last_use = ++use_clock_;
      TBC_COUNT("serve.cache.hits");
      if (slot->artifact->from_store) TBC_COUNT("serve.store.hits");
      if (cache_hit != nullptr) *cache_hit = true;
      return slot->artifact;
    }
  }

  // This thread owns the compile; no lock held while it runs.
  auto built = Build(cnf_text, guard, parsed);
  {
    std::unique_lock<std::mutex> lock(mu_);
    slot->done = true;
    if (!built.ok()) {
      slot->failed = true;
      slot->error = built.status();
      // Not cached: the next request for this key retries the compile.
      slots_.erase(key);
    } else {
      slot->artifact = *built;
      slot->last_use = ++use_clock_;
      EvictIfOverCapacityLocked();
      if (TBC_FAULT_POINT("serve.cache.evict")) {
        TBC_COUNT("serve.faults.injected");
        TBC_COUNT("serve.cache.evictions");
        slots_.erase(key);  // in-flight holders keep their shared_ptr
      }
    }
  }
  done_cv_.notify_all();
  if (built.ok() && !store_dir_.empty()) Spill(**built);
  return built;
}

std::shared_ptr<const Artifact> ArtifactCache::Lookup(
    const std::string& cnf_text) {
  const std::string key = KeyOf(cnf_text);
  std::lock_guard<std::mutex> lock(mu_);
  auto it = slots_.find(key);
  if (it == slots_.end() || !it->second->done || it->second->failed) {
    return nullptr;
  }
  if (it->second->artifact->cnf_text != cnf_text) return nullptr;  // collision
  it->second->last_use = ++use_clock_;
  return it->second->artifact;
}

size_t ArtifactCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t n = 0;
  for (const auto& [key, slot] : slots_) {
    if (slot->done && !slot->failed) ++n;
  }
  return n;
}

void ArtifactCache::EvictIfOverCapacityLocked() {
  while (true) {
    size_t done_count = 0;
    auto lru = slots_.end();
    for (auto it = slots_.begin(); it != slots_.end(); ++it) {
      if (!it->second->done || it->second->failed) continue;
      ++done_count;
      if (lru == slots_.end() || it->second->last_use < lru->second->last_use) {
        lru = it;
      }
    }
    if (done_count <= capacity_ || lru == slots_.end()) return;
    TBC_COUNT("serve.cache.evictions");
    slots_.erase(lru);
  }
}

}  // namespace tbc::serve
