#ifndef TBC_SERVE_PROTOCOL_H_
#define TBC_SERVE_PROTOCOL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "base/guard.h"
#include "base/result.h"

namespace tbc::serve {

/// Wire protocol of the KC service (DESIGN.md "Serving layer").
///
/// Framing: every message — request or response — travels as one frame:
///
///   bytes 0..3   magic "tbc1"
///   bytes 4..7   payload length, uint32 little-endian
///   bytes 8..    payload (exactly that many bytes)
///
/// The payload is a line-oriented text document (key SP value per line)
/// terminated by an optional raw blob introduced by a byte-counted header
/// line ("cnf <n>" / "stats <n>"). Text keeps the protocol debuggable with
/// netcat; the length prefix keeps parsing O(frame) with a hard cap.
///
/// Trust boundary: every byte off the wire is adversarial. Frame length is
/// capped before allocation, all numeric fields are strictly parsed,
/// unknown or duplicate keys are rejected, and blob byte counts must match
/// the remaining payload exactly. A malformed frame never aborts the
/// server: it yields a typed kInvalidInput response (when a response can
/// still be framed) or a closed connection — both observable, neither
/// fatal.
///
/// Doubles (weights, WMC results) travel as C hexfloats (emitted with
/// std::to_chars, which unlike "%a" never embeds the run-time locale's
/// radix character), so a
/// value round-trips bit-exactly: the soak test's bit-identical assertion
/// holds across the wire, not just in memory.

/// Frame header constants.
inline constexpr char kFrameMagic[4] = {'t', 'b', 'c', '1'};
inline constexpr size_t kFrameHeaderBytes = 8;
/// Default cap on a single frame's payload (server and client).
inline constexpr size_t kDefaultMaxFrameBytes = 32u << 20;

/// Operations a request can ask for.
enum class Op : uint8_t {
  kPing = 0,   // liveness probe; no CNF
  kCompile,    // compile (or find cached) and report circuit stats
  kCount,      // exact model count
  kWmc,        // weighted model count
  kMar,        // all per-literal marginal WMCs
  kMpe,        // most probable explanation (maximizing assignment)
  kStats,      // live observability dump (pinned JSON schema); no CNF
};

const char* OpName(Op op);
bool OpFromName(std::string_view name, Op* out);

/// A parsed request. `cnf_text` is the raw DIMACS blob — the server hashes
/// these bytes for the artifact cache and parses them with the hardened
/// CNF parser.
struct Request {
  Op op = Op::kPing;
  /// Client-side deadline propagated to the server; 0 = server default.
  double timeout_ms = 0.0;
  uint64_t max_nodes = 0;
  uint64_t max_decisions = 0;
  /// Per-literal weight overrides (DIMACS literal, weight); unmentioned
  /// literals weigh 1.0.
  std::vector<std::pair<int, double>> weights;
  std::string cnf_text;

  std::string Serialize() const;
  /// Strict parse of a request payload. Never throws; never aborts.
  static Result<Request> Parse(std::string_view payload);
};

/// A parsed response. `status`/`message` mirror Status; every non-kOk
/// response is a *typed* refusal or error the client can branch on.
struct Response {
  StatusCode status = StatusCode::kOk;
  std::string message;          // single line, empty when ok
  std::string count;            // kCount/kCompile: decimal model count
  bool has_wmc = false;
  double wmc = 0.0;             // kWmc: weighted count (hexfloat on wire)
  std::vector<std::pair<int, double>> marginals;  // kMar: (dimacs lit, wmc)
  bool has_mpe = false;
  double mpe_weight = 0.0;
  std::vector<int> mpe;         // kMpe: maximizing assignment, DIMACS lits
  uint64_t circuit_nodes = 0;   // kCompile: circuit size
  uint64_t circuit_edges = 0;
  std::string artifact;         // content-hash key, 32 hex chars
  bool cache_hit = false;
  std::string stats_json;       // kStats: observability dump

  bool ok() const { return status == StatusCode::kOk; }
  /// The response's status as a Status (for propagating into Result<T>).
  Status ToStatus() const;

  std::string Serialize() const;
  /// Strict parse of a response payload (the client's trust boundary: the
  /// server may be lying, truncated, or replaced by an attacker).
  static Result<Response> Parse(std::string_view payload);
};

/// Encodes a payload into a full frame (header + payload).
std::string EncodeFrame(std::string_view payload);

/// Validates a frame header; on success sets *payload_len. Typed
/// kInvalidInput on bad magic or a length above `max_frame_bytes`.
Status DecodeFrameHeader(const unsigned char header[kFrameHeaderBytes],
                         size_t max_frame_bytes, size_t* payload_len);

/// Hexfloat encode/decode used for every double on the wire.
std::string EncodeDouble(double v);
bool DecodeDouble(std::string_view token, double* out);

}  // namespace tbc::serve

#endif  // TBC_SERVE_PROTOCOL_H_
