#ifndef TBC_SERVE_ARTIFACT_CACHE_H_
#define TBC_SERVE_ARTIFACT_CACHE_H_

#include <condition_variable>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "base/bigint.h"
#include "base/guard.h"
#include "base/result.h"
#include "nnf/nnf.h"

namespace tbc {
class Cnf;
}

namespace tbc::serve {

/// An immutable compiled circuit shared by concurrent queries.
///
/// Built once (single-threaded) by ArtifactCache::GetOrCompile, then only
/// read. Build() warms every lazily-populated manager cache — varsets, the
/// level schedule, the model-count memo, and the smoothed root used by the
/// marginals query — so the "warm single-threaded before sharing" contract
/// of NnfManager holds and concurrent WMC/MAR/MPE queries on one artifact
/// are data-race-free (asserted by the serve soak test under TSan).
struct Artifact {
  std::string cnf_text;   // exact bytes the key was hashed from
  std::string key;        // 32-hex content hash
  std::unique_ptr<NnfManager> mgr;
  NnfId root = kInvalidNnf;
  NnfId smooth_root = kInvalidNnf;  // pre-smoothed for MarginalWmc
  size_t num_vars = 0;
  BigUint count;          // exact model count (warms the count memo)
  size_t nodes = 0;       // circuit nodes below root
  size_t edges = 0;       // circuit edges below root
  bool from_store = false;  // restored from the persistent store (not compiled)
};

/// Content-hash-keyed cache of compiled artifacts: the "compile once,
/// answer unbounded linear-time queries" economics of the paper, behind a
/// server (ROADMAP "KC-as-a-service").
///
/// - Keys are the 128-bit hash of the raw CNF bytes; on a hit the full
///   text is compared, so a hash collision degrades to an uncached compile
///   instead of aliasing two CNFs.
/// - Single-flight: concurrent requests for one key join the in-flight
///   compile instead of compiling twice; joiners wait under their own
///   Guard deadline. A failed compile is not cached — joiners receive the
///   failure, the next request retries.
/// - Bounded: at most `capacity` artifacts, LRU-evicted. Evicted artifacts
///   stay alive for queries already holding the shared_ptr.
/// - The fault point "serve.cache.evict" force-evicts an artifact right
///   after insertion, exercising the eviction race deliberately.
/// - Optional persistence (`store_dir`): each successfully compiled
///   artifact is spilled to `store_dir/<key>.tbc` (src/store/ arena
///   format), and WarmStart() restores spilled artifacts on startup by
///   mmaping them — a restarted server answers previously compiled CNFs
///   with zero compile activity. Store files are untrusted input until
///   the store layer's checksums pass; files that fail validation are
///   skipped (counted), never served.
class ArtifactCache {
 public:
  explicit ArtifactCache(size_t capacity, std::string store_dir = {})
      : capacity_(capacity == 0 ? 1 : capacity),
        store_dir_(std::move(store_dir)) {}

  /// The artifact for `cnf_text`, compiling under `guard` on a miss.
  /// `cache_hit` (optional) reports whether a compiled artifact was reused
  /// (a single-flight join counts as a hit). `parsed` (optional) is the
  /// already-parsed form of exactly `cnf_text`, letting callers that
  /// parsed for admission control skip the second parse on the compile
  /// path; keys and hit checks still use the raw bytes. Typed errors:
  /// kInvalidInput (CNF rejected), the guard's refusal codes, kInternal
  /// (injected allocation failure).
  Result<std::shared_ptr<const Artifact>> GetOrCompile(
      const std::string& cnf_text, Guard& guard, bool* cache_hit,
      const Cnf* parsed = nullptr);

  /// Peek: the completed artifact for `cnf_text` if one is cached, else
  /// nullptr. Never compiles, never blocks on an in-flight compile, but
  /// does refresh LRU recency. Used by admission control to let already-
  /// compiled CNFs bypass the width forecast (the compile cost the
  /// forecast prices has already been paid).
  std::shared_ptr<const Artifact> Lookup(const std::string& cnf_text);

  /// Number of cached (completed) artifacts.
  size_t size() const;

  /// Builds an artifact without touching the cache (also the compile step
  /// of GetOrCompile). Exposed for tests and the collision fallback.
  /// `parsed`, when non-null, must be the parse of exactly `cnf_text`.
  static Result<std::shared_ptr<const Artifact>> Build(
      const std::string& cnf_text, Guard& guard, const Cnf* parsed = nullptr);

  /// Restores previously spilled artifacts from `store_dir` (no-op when
  /// persistence is off). Returns the number restored (bounded by
  /// capacity; deterministic key order). Call once before serving —
  /// restore warms each mapped manager's caches single-threaded, same
  /// contract as Build().
  size_t WarmStart();

  /// The spill directory ("" = persistence off).
  const std::string& store_dir() const { return store_dir_; }

 private:
  struct Slot {
    std::shared_ptr<const Artifact> artifact;  // set when done && !failed
    Status error;                              // set when done && failed
    bool done = false;
    bool failed = false;
    uint64_t last_use = 0;
  };

  void EvictIfOverCapacityLocked();
  /// Persists `artifact` under store_dir_/<key>.tbc (best-effort: spill
  /// failures are counted, not surfaced — the artifact still serves).
  void Spill(const Artifact& artifact) const;

  const size_t capacity_;
  const std::string store_dir_;
  mutable std::mutex mu_;
  std::condition_variable done_cv_;  // broadcast when any compile finishes
  uint64_t use_clock_ = 0;
  std::map<std::string, std::shared_ptr<Slot>> slots_;
};

}  // namespace tbc::serve

#endif  // TBC_SERVE_ARTIFACT_CACHE_H_
