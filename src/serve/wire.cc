#include "serve/wire.h"

#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "base/observability.h"
#include "base/strings.h"
#include "serve/protocol.h"

namespace tbc::serve {

namespace {

Status Errno(const char* what) {
  return Status::Unavailable(std::string(what) + ": " +
                             std::strerror(errno));
}

/// Polls fd for readability. 0 = ready, 1 = timeout; kUnavailable on error.
Result<int> PollReadable(int fd, int timeout_ms) {
  struct pollfd p;
  p.fd = fd;
  p.events = POLLIN;
  p.revents = 0;
  while (true) {
    const int rc = ::poll(&p, 1, timeout_ms);
    if (rc > 0) return 0;
    if (rc == 0) return 1;
    if (errno == EINTR) continue;
    return Errno("poll");
  }
}

}  // namespace

Socket& Socket::operator=(Socket&& o) noexcept {
  if (this != &o) {
    Close();
    fd_ = o.fd_;
    o.fd_ = -1;
  }
  return *this;
}

void Socket::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

int Socket::Release() {
  const int fd = fd_;
  fd_ = -1;
  return fd;
}

Result<Address> ParseAddress(std::string_view spec) {
  Address addr;
  if (spec.rfind("unix:", 0) == 0) {
    addr.uds_path = std::string(spec.substr(5));
    if (addr.uds_path.empty()) {
      return Status::InvalidInput("unix: address needs a path");
    }
    if (addr.uds_path.size() >= sizeof(sockaddr_un{}.sun_path)) {
      return Status::InvalidInput("unix socket path too long");
    }
    return addr;
  }
  std::string_view rest = spec;
  if (rest.rfind("tcp:", 0) == 0) rest.remove_prefix(4);
  const size_t colon = rest.rfind(':');
  if (colon == std::string_view::npos) {
    return Status::InvalidInput("address must be unix:PATH or [tcp:]HOST:PORT");
  }
  addr.tcp_host = std::string(rest.substr(0, colon));
  uint64_t port = 0;
  if (!ParseUint64(rest.substr(colon + 1), &port) || port > 65535) {
    return Status::InvalidInput("bad port in address '" + std::string(spec) + "'");
  }
  addr.tcp_port = static_cast<int>(port);
  return addr;
}

Result<Socket> Connect(const Address& addr) {
  if (addr.is_unix()) {
    Socket s(::socket(AF_UNIX, SOCK_STREAM, 0));
    if (!s.valid()) return Errno("socket");
    sockaddr_un sa{};
    sa.sun_family = AF_UNIX;
    std::strncpy(sa.sun_path, addr.uds_path.c_str(), sizeof(sa.sun_path) - 1);
    if (::connect(s.fd(), reinterpret_cast<sockaddr*>(&sa), sizeof(sa)) != 0) {
      return Errno("connect");
    }
    return s;
  }
  Socket s(::socket(AF_INET, SOCK_STREAM, 0));
  if (!s.valid()) return Errno("socket");
  sockaddr_in sa{};
  sa.sin_family = AF_INET;
  sa.sin_port = htons(static_cast<uint16_t>(addr.tcp_port));
  const std::string host = addr.tcp_host.empty() ? "127.0.0.1" : addr.tcp_host;
  if (::inet_pton(AF_INET, host.c_str(), &sa.sin_addr) != 1) {
    return Status::InvalidInput("bad IPv4 host '" + host + "'");
  }
  if (::connect(s.fd(), reinterpret_cast<sockaddr*>(&sa), sizeof(sa)) != 0) {
    return Errno("connect");
  }
  return s;
}

Result<Socket> Listen(const Address& addr, int backlog, int* bound_port) {
  if (addr.is_unix()) {
    Socket s(::socket(AF_UNIX, SOCK_STREAM, 0));
    if (!s.valid()) return Errno("socket");
    sockaddr_un sa{};
    sa.sun_family = AF_UNIX;
    std::strncpy(sa.sun_path, addr.uds_path.c_str(), sizeof(sa.sun_path) - 1);
    ::unlink(addr.uds_path.c_str());
    if (::bind(s.fd(), reinterpret_cast<sockaddr*>(&sa), sizeof(sa)) != 0) {
      return Errno("bind");
    }
    if (::listen(s.fd(), backlog) != 0) return Errno("listen");
    if (bound_port != nullptr) *bound_port = -1;
    return s;
  }
  Socket s(::socket(AF_INET, SOCK_STREAM, 0));
  if (!s.valid()) return Errno("socket");
  const int one = 1;
  ::setsockopt(s.fd(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in sa{};
  sa.sin_family = AF_INET;
  sa.sin_port = htons(static_cast<uint16_t>(addr.tcp_port));
  sa.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::bind(s.fd(), reinterpret_cast<sockaddr*>(&sa), sizeof(sa)) != 0) {
    return Errno("bind");
  }
  if (::listen(s.fd(), backlog) != 0) return Errno("listen");
  if (bound_port != nullptr) {
    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    if (::getsockname(s.fd(), reinterpret_cast<sockaddr*>(&bound), &len) != 0) {
      return Errno("getsockname");
    }
    *bound_port = ntohs(bound.sin_port);
  }
  return s;
}

Result<Socket> Accept(const Socket& listener, int poll_timeout_ms) {
  auto ready = PollReadable(listener.fd(), poll_timeout_ms);
  if (!ready.ok()) return ready.status();
  if (*ready == 1) return Status::DeadlineExceeded("accept poll timeout");
  const int fd = ::accept(listener.fd(), nullptr, nullptr);
  if (fd < 0) return Errno("accept");
  return Socket(fd);
}

Status SendRaw(const Socket& s, std::string_view bytes) {
  size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n = ::send(s.fd(), bytes.data() + sent, bytes.size() - sent,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Errno("send");
    }
    sent += static_cast<size_t>(n);
  }
  TBC_COUNT_N("serve.bytes.written", bytes.size());
  return Status::Ok();
}

Status SendFrame(const Socket& s, std::string_view payload) {
  return SendRaw(s, EncodeFrame(payload));
}

namespace {

/// Reads exactly n bytes, polling with `io_timeout_ms` between chunks.
/// `any_read` reports whether at least one byte arrived (distinguishes a
/// clean close from a truncated frame).
Status RecvExact(const Socket& s, unsigned char* buf, size_t n,
                 int io_timeout_ms, bool* any_read) {
  size_t got = 0;
  while (got < n) {
    auto ready = PollReadable(s.fd(), io_timeout_ms <= 0 ? -1 : io_timeout_ms);
    if (!ready.ok()) return ready.status();
    if (*ready == 1) {
      return Status::DeadlineExceeded("timed out waiting for frame bytes");
    }
    const ssize_t r = ::recv(s.fd(), buf + got, n - got, 0);
    if (r < 0) {
      if (errno == EINTR) continue;
      return Errno("recv");
    }
    if (r == 0) {
      if (got == 0 && !*any_read) {
        return Status::Unavailable("connection closed");
      }
      return Status::InvalidInput("truncated frame (peer closed mid-frame)");
    }
    got += static_cast<size_t>(r);
    *any_read = true;
  }
  return Status::Ok();
}

}  // namespace

Status RecvFrame(const Socket& s, size_t max_frame_bytes, int idle_timeout_ms,
                 int io_timeout_ms, std::string* payload) {
  unsigned char header[kFrameHeaderBytes];
  bool any_read = false;
  // The wait for the first byte uses the idle timeout (a connection is
  // allowed to sit quietly between requests); once bytes flow, the
  // tighter io timeout bounds a slow-loris peer.
  {
    auto ready = PollReadable(s.fd(), idle_timeout_ms <= 0 ? -1 : idle_timeout_ms);
    if (!ready.ok()) return ready.status();
    if (*ready == 1) return Status::DeadlineExceeded("idle timeout");
  }
  Status st = RecvExact(s, header, sizeof(header), io_timeout_ms, &any_read);
  if (!st.ok()) return st;
  size_t payload_len = 0;
  TBC_RETURN_IF_ERROR(DecodeFrameHeader(header, max_frame_bytes, &payload_len));
  payload->resize(payload_len);
  if (payload_len > 0) {
    st = RecvExact(s, reinterpret_cast<unsigned char*>(payload->data()),
                   payload_len, io_timeout_ms, &any_read);
    if (!st.ok()) return st;
  }
  TBC_COUNT_N("serve.bytes.read", kFrameHeaderBytes + payload_len);
  return Status::Ok();
}

}  // namespace tbc::serve
