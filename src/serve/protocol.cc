#include "serve/protocol.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "base/strings.h"

namespace tbc::serve {

namespace {

/// Caps on repeated fields, enforced before allocation grows with
/// attacker-controlled counts.
constexpr size_t kMaxWeights = 1u << 21;  // two per variable at the 2^20 cap
constexpr size_t kMaxMpeLits = 1u << 21;
constexpr size_t kMaxMarginals = 1u << 21;

Status Bad(const std::string& what) { return Status::InvalidInput(what); }

/// Pulls the next '\n'-terminated line out of `rest`. Returns false at end
/// of payload. A final line without a trailing newline is accepted.
bool NextLine(std::string_view* rest, std::string_view* line) {
  if (rest->empty()) return false;
  const size_t nl = rest->find('\n');
  if (nl == std::string_view::npos) {
    *line = *rest;
    rest->remove_prefix(rest->size());
  } else {
    *line = rest->substr(0, nl);
    rest->remove_prefix(nl + 1);
  }
  // Tolerate CRLF from hand-driven clients (netcat on a DOS file).
  if (!line->empty() && line->back() == '\r') line->remove_suffix(1);
  return true;
}

/// Splits "key value..." on the first space. Key must be non-empty.
void SplitKey(std::string_view line, std::string_view* key,
              std::string_view* value) {
  const size_t sp = line.find(' ');
  if (sp == std::string_view::npos) {
    *key = line;
    *value = std::string_view();
  } else {
    *key = line.substr(0, sp);
    *value = line.substr(sp + 1);
  }
}

/// Consumes a byte-counted blob ("cnf <n>" / "stats <n>" payloads): the
/// remaining bytes of the payload must be exactly `declared`.
Status TakeBlob(std::string_view rest, std::string_view count_token,
                const char* what, std::string* out) {
  uint64_t declared = 0;
  if (!ParseUint64(count_token, &declared)) {
    return Bad(std::string(what) + " blob needs a byte count");
  }
  if (declared != rest.size()) {
    return Bad(std::string(what) + " blob byte count " +
               std::to_string(declared) + " does not match remaining " +
               std::to_string(rest.size()) + " payload bytes");
  }
  out->assign(rest.data(), rest.size());
  return Status::Ok();
}

}  // namespace

const char* OpName(Op op) {
  switch (op) {
    case Op::kPing: return "ping";
    case Op::kCompile: return "compile";
    case Op::kCount: return "count";
    case Op::kWmc: return "wmc";
    case Op::kMar: return "mar";
    case Op::kMpe: return "mpe";
    case Op::kStats: return "stats";
  }
  return "ping";
}

bool OpFromName(std::string_view name, Op* out) {
  for (Op op : {Op::kPing, Op::kCompile, Op::kCount, Op::kWmc, Op::kMar,
                Op::kMpe, Op::kStats}) {
    if (name == OpName(op)) {
      *out = op;
      return true;
    }
  }
  return false;
}

std::string EncodeDouble(double v) {
  // Locale-independent hexfloat (base/strings.h): "%a"/strtod honour the
  // run-time locale's radix character, so a server and client in different
  // locales would disagree about "0x1.8p+1" — pinned by the
  // LocaleIndependence protocol tests.
  return FormatDoubleHex(v);
}

bool DecodeDouble(std::string_view token, double* out) {
  if (token.empty() || token.size() > 63) return false;
  return ParseDoubleAnyFormat(token, out);
}

std::string EncodeFrame(std::string_view payload) {
  std::string frame;
  frame.reserve(kFrameHeaderBytes + payload.size());
  frame.append(kFrameMagic, sizeof(kFrameMagic));
  const uint32_t len = static_cast<uint32_t>(payload.size());
  for (int i = 0; i < 4; ++i) {
    frame.push_back(static_cast<char>((len >> (8 * i)) & 0xff));
  }
  frame.append(payload.data(), payload.size());
  return frame;
}

Status DecodeFrameHeader(const unsigned char header[kFrameHeaderBytes],
                         size_t max_frame_bytes, size_t* payload_len) {
  if (std::memcmp(header, kFrameMagic, sizeof(kFrameMagic)) != 0) {
    return Bad("bad frame magic");
  }
  uint32_t len = 0;
  for (int i = 0; i < 4; ++i) {
    len |= static_cast<uint32_t>(header[4 + i]) << (8 * i);
  }
  if (len > max_frame_bytes) {
    return Bad("frame of " + std::to_string(len) + " bytes exceeds cap of " +
               std::to_string(max_frame_bytes));
  }
  *payload_len = len;
  return Status::Ok();
}

std::string Request::Serialize() const {
  std::string out = "tbcq 1\n";
  out += "op ";
  out += OpName(op);
  out += "\n";
  if (timeout_ms > 0.0) out += "timeout_ms " + EncodeDouble(timeout_ms) + "\n";
  if (max_nodes > 0) out += "max_nodes " + std::to_string(max_nodes) + "\n";
  if (max_decisions > 0) {
    out += "max_decisions " + std::to_string(max_decisions) + "\n";
  }
  for (const auto& [lit, w] : weights) {
    out += "weight " + std::to_string(lit) + " " + EncodeDouble(w) + "\n";
  }
  if (!cnf_text.empty()) {
    out += "cnf " + std::to_string(cnf_text.size()) + "\n";
    out += cnf_text;
  }
  return out;
}

Result<Request> Request::Parse(std::string_view payload) {
  Request req;
  std::string_view rest = payload;
  std::string_view line;
  if (!NextLine(&rest, &line) || line != "tbcq 1") {
    return Bad("request does not start with 'tbcq 1'");
  }
  bool saw_op = false, saw_timeout = false, saw_nodes = false,
       saw_decisions = false;
  while (NextLine(&rest, &line)) {
    if (line.empty()) return Bad("empty line in request");
    std::string_view key, value;
    SplitKey(line, &key, &value);
    if (key == "op") {
      if (saw_op) return Bad("duplicate op");
      if (!OpFromName(value, &req.op)) {
        return Bad("unknown op '" + std::string(value) + "'");
      }
      saw_op = true;
    } else if (key == "timeout_ms") {
      if (saw_timeout) return Bad("duplicate timeout_ms");
      if (!DecodeDouble(value, &req.timeout_ms) || req.timeout_ms < 0.0 ||
          std::isinf(req.timeout_ms)) {
        return Bad("bad timeout_ms '" + std::string(value) + "'");
      }
      saw_timeout = true;
    } else if (key == "max_nodes") {
      if (saw_nodes) return Bad("duplicate max_nodes");
      if (!ParseUint64(value, &req.max_nodes)) {
        return Bad("bad max_nodes '" + std::string(value) + "'");
      }
      saw_nodes = true;
    } else if (key == "max_decisions") {
      if (saw_decisions) return Bad("duplicate max_decisions");
      if (!ParseUint64(value, &req.max_decisions)) {
        return Bad("bad max_decisions '" + std::string(value) + "'");
      }
      saw_decisions = true;
    } else if (key == "weight") {
      if (req.weights.size() >= kMaxWeights) return Bad("too many weight lines");
      const size_t sp = value.find(' ');
      if (sp == std::string_view::npos) return Bad("weight needs 'LIT W'");
      int lit = 0;
      double w = 0.0;
      if (!ParseInt(value.substr(0, sp), &lit) || lit == 0 ||
          lit < -(1 << 28) || lit > (1 << 28)) {
        return Bad("bad weight literal '" + std::string(value.substr(0, sp)) + "'");
      }
      if (!DecodeDouble(value.substr(sp + 1), &w) || w < 0.0 || std::isinf(w)) {
        return Bad("bad weight value '" + std::string(value.substr(sp + 1)) + "'");
      }
      req.weights.emplace_back(lit, w);
    } else if (key == "cnf") {
      TBC_RETURN_IF_ERROR(TakeBlob(rest, value, "cnf", &req.cnf_text));
      rest = std::string_view();
    } else {
      return Bad("unknown request key '" + std::string(key) + "'");
    }
  }
  if (!saw_op) return Bad("request missing op");
  const bool needs_cnf = req.op != Op::kPing && req.op != Op::kStats;
  if (needs_cnf && req.cnf_text.empty()) {
    return Bad(std::string("op ") + OpName(req.op) + " requires a cnf blob");
  }
  return req;
}

Status Response::ToStatus() const {
  if (ok()) return Status::Ok();
  return Status::Error(status, message);
}

std::string Response::Serialize() const {
  std::string out = "tbcr 1\n";
  out += "status ";
  out += StatusCodeName(status);
  out += "\n";
  if (!message.empty()) {
    std::string flat = message;
    for (char& c : flat) {
      if (c == '\n' || c == '\r') c = ' ';
    }
    out += "message " + flat + "\n";
  }
  if (!count.empty()) out += "count " + count + "\n";
  if (has_wmc) out += "wmc " + EncodeDouble(wmc) + "\n";
  for (const auto& [lit, v] : marginals) {
    out += "marg " + std::to_string(lit) + " " + EncodeDouble(v) + "\n";
  }
  if (has_mpe) {
    out += "mpe_weight " + EncodeDouble(mpe_weight) + "\n";
    out += "mpe";
    for (int l : mpe) out += " " + std::to_string(l);
    out += "\n";
  }
  if (circuit_nodes > 0) out += "nodes " + std::to_string(circuit_nodes) + "\n";
  if (circuit_edges > 0) out += "edges " + std::to_string(circuit_edges) + "\n";
  if (!artifact.empty()) out += "artifact " + artifact + "\n";
  out += std::string("cache ") + (cache_hit ? "hit" : "miss") + "\n";
  if (!stats_json.empty()) {
    out += "stats " + std::to_string(stats_json.size()) + "\n";
    out += stats_json;
  }
  return out;
}

Result<Response> Response::Parse(std::string_view payload) {
  Response resp;
  std::string_view rest = payload;
  std::string_view line;
  if (!NextLine(&rest, &line) || line != "tbcr 1") {
    return Bad("response does not start with 'tbcr 1'");
  }
  bool saw_status = false, saw_cache = false;
  while (NextLine(&rest, &line)) {
    if (line.empty()) return Bad("empty line in response");
    std::string_view key, value;
    SplitKey(line, &key, &value);
    if (key == "status") {
      if (saw_status) return Bad("duplicate status");
      if (!StatusCodeFromName(value, &resp.status)) {
        return Bad("unknown status '" + std::string(value) + "'");
      }
      saw_status = true;
    } else if (key == "message") {
      resp.message.assign(value.data(), value.size());
    } else if (key == "count") {
      // Decimal digits only (BigUint::ToString output).
      if (value.empty() || value.size() > (1u << 20)) return Bad("bad count");
      for (char c : value) {
        if (c < '0' || c > '9') return Bad("bad count digit");
      }
      resp.count.assign(value.data(), value.size());
    } else if (key == "wmc") {
      if (!DecodeDouble(value, &resp.wmc)) {
        return Bad("bad wmc '" + std::string(value) + "'");
      }
      resp.has_wmc = true;
    } else if (key == "marg") {
      if (resp.marginals.size() >= kMaxMarginals) return Bad("too many marg lines");
      const size_t sp = value.find(' ');
      if (sp == std::string_view::npos) return Bad("marg needs 'LIT W'");
      int lit = 0;
      double v = 0.0;
      if (!ParseInt(value.substr(0, sp), &lit) || lit == 0) {
        return Bad("bad marg literal");
      }
      if (!DecodeDouble(value.substr(sp + 1), &v)) return Bad("bad marg value");
      resp.marginals.emplace_back(lit, v);
    } else if (key == "mpe_weight") {
      if (!DecodeDouble(value, &resp.mpe_weight)) return Bad("bad mpe_weight");
    } else if (key == "mpe") {
      for (const std::string& tok : SplitWhitespace(value)) {
        if (resp.mpe.size() >= kMaxMpeLits) return Bad("too many mpe literals");
        int lit = 0;
        if (!ParseInt(tok, &lit) || lit == 0) return Bad("bad mpe literal");
        resp.mpe.push_back(lit);
      }
      resp.has_mpe = true;
    } else if (key == "nodes") {
      if (!ParseUint64(value, &resp.circuit_nodes)) return Bad("bad nodes");
    } else if (key == "edges") {
      if (!ParseUint64(value, &resp.circuit_edges)) return Bad("bad edges");
    } else if (key == "artifact") {
      if (value.size() != 32) return Bad("artifact key must be 32 hex chars");
      for (char c : value) {
        const bool hex = (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f');
        if (!hex) return Bad("bad artifact key");
      }
      resp.artifact.assign(value.data(), value.size());
    } else if (key == "cache") {
      if (saw_cache) return Bad("duplicate cache");
      if (value != "hit" && value != "miss") return Bad("bad cache flag");
      resp.cache_hit = value == "hit";
      saw_cache = true;
    } else if (key == "stats") {
      TBC_RETURN_IF_ERROR(TakeBlob(rest, value, "stats", &resp.stats_json));
      rest = std::string_view();
    } else {
      return Bad("unknown response key '" + std::string(key) + "'");
    }
  }
  if (!saw_status) return Bad("response missing status");
  return resp;
}

}  // namespace tbc::serve
