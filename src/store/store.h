#ifndef TBC_STORE_STORE_H_
#define TBC_STORE_STORE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>

#include "base/bigint.h"
#include "base/result.h"
#include "nnf/nnf.h"

namespace tbc {

/// Persistent memory-mapped circuit store (`.tbc` files; layout in
/// store/format.h).
///
/// The write side serializes the subcircuit reachable from a root into a
/// flat CSR arena; the read side mmaps the file and, after validating
/// header, section table, checksums and structural invariants, hands the
/// mapped arrays straight to NnfManager::FromMapped — so loading a
/// compiled circuit costs O(pages touched) instead of a parse.

struct StoreWriteOptions {
  /// Source CNF text to embed (DIMACS). Empty = omitted. The serving
  /// layer stores it so a warm-started cache can verify content keys
  /// byte-for-byte.
  std::string_view cnf_text;
  /// Precomputed model count to embed (nullptr = omitted).
  const BigUint* model_count = nullptr;
  /// Variable universe to record; 0 means use mgr.num_vars(). Values
  /// smaller than the largest variable mentioned are rejected.
  size_t num_vars = 0;
};

/// Serializes the subcircuit of `mgr` reachable from `root` to `path`.
/// Node ids are compacted (constants keep ids 0/1) preserving the
/// children-before-parents order the mapped reader relies on. The write is
/// atomic: a temp file in the same directory is fully written, fsynced and
/// renamed over `path`, so readers never observe a torn store.
Status WriteCircuitStore(const NnfManager& mgr, NnfId root,
                         const std::string& path,
                         const StoreWriteOptions& options = {});

/// A validated read-only mapping of a `.tbc` file.
///
/// Open() refuses (StatusCode::kInvalidInput) anything that is not a
/// well-formed store: bad magic, unknown version, truncated or overlapping
/// sections, checksum mismatches, counts inconsistent with the actual file
/// size, or circuit arrays violating the NnfManager invariants. Until that
/// validation passes the file is treated as untrusted input — in
/// particular, nothing is allocated proportional to the file's *claimed*
/// counts, only to its actual size. On non-little-endian hosts Open()
/// refuses outright rather than misreading the arrays.
class MappedStore : public std::enable_shared_from_this<MappedStore> {
 public:
  static Result<std::shared_ptr<const MappedStore>> Open(const std::string& path);

  MappedStore(const MappedStore&) = delete;
  MappedStore& operator=(const MappedStore&) = delete;
  ~MappedStore();

  uint32_t root() const { return root_; }
  uint32_t num_nodes() const { return num_nodes_; }
  uint64_t num_edges() const { return num_edges_; }
  size_t num_vars() const { return num_vars_; }

  /// Embedded source CNF ("" if the writer omitted it). Points into the
  /// mapping: valid while this store is alive.
  std::string_view cnf_text() const { return cnf_text_; }

  bool has_model_count() const { return has_model_count_; }
  const BigUint& model_count() const { return model_count_; }

  /// Zero-copy view for NnfManager::FromMapped. The view's `owner` keeps
  /// this mapping alive, so the returned circuit outlives the caller's
  /// shared_ptr.
  MappedCircuit Circuit() const;

 private:
  MappedStore() = default;

  const void* map_ = nullptr;  // mmap base (page-aligned)
  size_t map_size_ = 0;

  const uint8_t* kinds_ = nullptr;
  const uint32_t* payloads_ = nullptr;
  const uint64_t* child_begin_ = nullptr;
  const uint32_t* children_ = nullptr;
  uint32_t num_nodes_ = 0;
  uint32_t root_ = 0;
  uint64_t num_edges_ = 0;
  size_t num_vars_ = 0;
  std::string_view cnf_text_;
  bool has_model_count_ = false;
  BigUint model_count_;
};

/// A circuit loaded from a store: a manager serving queries directly over
/// the mapped arrays, plus the store metadata.
struct LoadedCircuit {
  std::unique_ptr<NnfManager> mgr;
  NnfId root = kInvalidNnf;
  std::shared_ptr<const MappedStore> store;  // mapping also pinned by mgr
};

/// Opens `path` and adopts it as a read-only NnfManager (zero-copy).
Result<LoadedCircuit> LoadCircuitStore(const std::string& path);

}  // namespace tbc

#endif  // TBC_STORE_STORE_H_
