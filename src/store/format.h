#ifndef TBC_STORE_FORMAT_H_
#define TBC_STORE_FORMAT_H_

#include <bit>
#include <cstddef>
#include <cstdint>
#include <cstring>

namespace tbc {

/// On-disk layout of the `.tbc` persistent circuit store.
///
/// A store file is:
///
///   [StoreHeader    : 64 bytes ]
///   [StoreSection[6]: 6 × 32 B ]   section table (fixed order, see SectionId)
///   [section bytes...          ]   each section 8-byte aligned, zero-padded
///
/// All multi-byte fields are little-endian. The format is a direct dump of
/// the NnfManager CSR arrays so a reader can mmap the file and serve
/// queries over the mapped pages with no deserialization pass — load cost
/// is O(pages touched), the Untangle `basetree.h` trick.
///
/// Trust boundary: a store file is UNTRUSTED INPUT until MappedStore::Open
/// has validated the magic/version, the section table (offsets and sizes
/// in-bounds, aligned, consistent with the header counts), every section
/// checksum, and the structural circuit invariants (see store.cc). Nothing
/// is allocated proportional to the file's claimed counts before those
/// counts have been bounded by the actual file size.

/// Fixed section order in the section table.
enum SectionId : uint32_t {
  kSectionKinds = 0,       // uint8[num_nodes]   node kinds
  kSectionPayloads = 1,    // uint32[num_nodes]  literal codes (0 for gates)
  kSectionChildBegin = 2,  // uint64[num_nodes+1] CSR row offsets
  kSectionChildren = 3,    // uint32[num_edges]  CSR child ids
  kSectionCnfText = 4,     // bytes, optional    source CNF (DIMACS text)
  kSectionModelCount = 5,  // uint64[k], optional BigUint limbs, little-endian
  kNumSections = 6,
};

/// Header flags.
enum StoreFlags : uint32_t {
  kFlagHasCnfText = 1u << 0,
  kFlagHasModelCount = 1u << 1,
};

inline constexpr uint8_t kStoreMagic[8] = {'T', 'B', 'C', 'S', 'T', 'O', 'R', 'E'};
inline constexpr uint32_t kStoreVersion = 1;

/// One entry in the section table. `checksum_lo/hi` is HashBytes() over the
/// section's payload bytes (excluding alignment padding).
struct StoreSection {
  uint64_t offset = 0;       // absolute file offset, 8-byte aligned
  uint64_t size = 0;         // payload bytes (0 = section absent)
  uint64_t checksum_lo = 0;  // ContentHash.lo of the payload
  uint64_t checksum_hi = 0;  // ContentHash.hi of the payload
};

struct StoreHeader {
  uint8_t magic[8];       // kStoreMagic
  uint32_t version;       // kStoreVersion
  uint32_t flags;         // StoreFlags bits
  uint64_t num_vars;      // variable universe of the circuit
  uint32_t num_nodes;     // >= 2 (ids 0/1 are the ⊥/⊤ constants)
  uint32_t root;          // < num_nodes
  uint64_t num_edges;     // total CSR children entries
  uint32_t num_sections;  // kNumSections
  uint32_t reserved0;     // 0
  uint64_t header_checksum;  // HashU64-folded HashBytes over header+table
                             // with this field zeroed
  uint64_t reserved1;        // 0
};

// The reader overlays these structs on the mapped bytes, so their layout IS
// the wire format: pin it. Every field is naturally aligned at these sizes,
// so no compiler inserts padding and no #pragma pack (with its UB-adjacent
// unaligned-access implications) is needed.
static_assert(sizeof(StoreSection) == 32, "on-disk layout is frozen");
static_assert(alignof(StoreSection) == 8, "on-disk layout is frozen");
static_assert(sizeof(StoreHeader) == 64, "on-disk layout is frozen");
static_assert(alignof(StoreHeader) == 8, "on-disk layout is frozen");
static_assert(offsetof(StoreHeader, version) == 8);
static_assert(offsetof(StoreHeader, num_vars) == 16);
static_assert(offsetof(StoreHeader, num_nodes) == 24);
static_assert(offsetof(StoreHeader, root) == 28);
static_assert(offsetof(StoreHeader, num_edges) == 32);
static_assert(offsetof(StoreHeader, header_checksum) == 48);

inline constexpr size_t kStoreTableOffset = sizeof(StoreHeader);
inline constexpr size_t kStoreDataOffset =
    sizeof(StoreHeader) + kNumSections * sizeof(StoreSection);

/// True iff this host can overlay the on-disk structs directly (the store
/// is little-endian on disk). Big-endian hosts take the reject path in
/// MappedStore::Open — a typed error, never a byte-swapped misread.
inline constexpr bool HostIsStoreCompatible() {
  return std::endian::native == std::endian::little;
}

/// Explicit little-endian encode/decode for the writer and for header
/// fixups. On LE hosts these compile to plain loads/stores; they exist so
/// the format stays well-defined (not "whatever the host does") and so a
/// future BE port only has to flip the reader onto them.
inline void StoreLe32(uint8_t* p, uint32_t v) {
  p[0] = static_cast<uint8_t>(v);
  p[1] = static_cast<uint8_t>(v >> 8);
  p[2] = static_cast<uint8_t>(v >> 16);
  p[3] = static_cast<uint8_t>(v >> 24);
}

inline void StoreLe64(uint8_t* p, uint64_t v) {
  StoreLe32(p, static_cast<uint32_t>(v));
  StoreLe32(p + 4, static_cast<uint32_t>(v >> 32));
}

inline uint32_t LoadLe32(const uint8_t* p) {
  return static_cast<uint32_t>(p[0]) | static_cast<uint32_t>(p[1]) << 8 |
         static_cast<uint32_t>(p[2]) << 16 | static_cast<uint32_t>(p[3]) << 24;
}

inline uint64_t LoadLe64(const uint8_t* p) {
  return static_cast<uint64_t>(LoadLe32(p)) |
         static_cast<uint64_t>(LoadLe32(p + 4)) << 32;
}

/// Rounds a file offset up to the section alignment (8 bytes: the widest
/// array element in any section, so every overlaid array is aligned
/// whenever the mapping base is page-aligned).
inline constexpr uint64_t AlignStoreOffset(uint64_t offset) {
  return (offset + 7) & ~uint64_t{7};
}

}  // namespace tbc

#endif  // TBC_STORE_FORMAT_H_
