#include "store/store.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <string>
#include <vector>

#include "base/check.h"
#include "base/hash.h"
#include "base/observability.h"
#include "store/format.h"

namespace tbc {
namespace {

using Kind = NnfManager::Kind;

/// Folds a 128-bit content hash into the 64-bit header checksum slot.
uint64_t FoldChecksum(const ContentHash& h) { return h.lo ^ HashU64(h.hi); }

std::string Errno(const char* what, const std::string& path) {
  return std::string(what) + " " + path + ": " + std::strerror(errno);
}

/// Serializes the 256-byte header + section table with explicit
/// little-endian stores (the writer is endian-portable even though the
/// zero-copy reader requires a little-endian host).
void EncodeHeader(const StoreHeader& hdr, const StoreSection* sections,
                  uint8_t out[kStoreDataOffset]) {
  std::memset(out, 0, kStoreDataOffset);
  std::memcpy(out, hdr.magic, 8);
  StoreLe32(out + 8, hdr.version);
  StoreLe32(out + 12, hdr.flags);
  StoreLe64(out + 16, hdr.num_vars);
  StoreLe32(out + 24, hdr.num_nodes);
  StoreLe32(out + 28, hdr.root);
  StoreLe64(out + 32, hdr.num_edges);
  StoreLe32(out + 40, hdr.num_sections);
  // reserved0 (44), header_checksum (48) and reserved1 (56) stay zero; the
  // checksum is patched in after hashing.
  for (uint32_t s = 0; s < kNumSections; ++s) {
    uint8_t* p = out + kStoreTableOffset + s * sizeof(StoreSection);
    StoreLe64(p, sections[s].offset);
    StoreLe64(p + 8, sections[s].size);
    StoreLe64(p + 16, sections[s].checksum_lo);
    StoreLe64(p + 24, sections[s].checksum_hi);
  }
}

Status WriteAll(int fd, const uint8_t* data, size_t n, const std::string& path) {
  size_t done = 0;
  while (done < n) {
    const ssize_t w = ::write(fd, data + done, n - done);
    if (w < 0) {
      if (errno == EINTR) continue;
      return Status::Unavailable(Errno("write", path));
    }
    done += static_cast<size_t>(w);
  }
  return Status::Ok();
}

}  // namespace

Status WriteCircuitStore(const NnfManager& mgr, NnfId root,
                         const std::string& path,
                         const StoreWriteOptions& options) {
  if (root >= mgr.num_nodes()) {
    return Status::InvalidInput("store write: root id out of range");
  }
  size_t num_vars = options.num_vars ? options.num_vars : mgr.num_vars();
  if (num_vars < mgr.num_vars()) {
    return Status::InvalidInput(
        "store write: num_vars smaller than the circuit's variable range");
  }

  // Compact the reachable subcircuit. TopologicalOrder returns reachable
  // ids ascending; prepending the (always-stored) ⊥/⊤ constants keeps the
  // list ascending, so the remap preserves children-before-parents.
  const std::vector<NnfId> reachable = mgr.TopologicalOrder(root);
  std::vector<NnfId> list;
  list.reserve(reachable.size() + 2);
  list.push_back(0);
  list.push_back(1);
  for (NnfId n : reachable) {
    if (n > 1) list.push_back(n);
  }
  std::vector<uint32_t> remap(mgr.num_nodes(), kInvalidNnf);
  for (size_t i = 0; i < list.size(); ++i) remap[list[i]] = static_cast<uint32_t>(i);

  const uint32_t num_nodes = static_cast<uint32_t>(list.size());
  uint64_t num_edges = 0;
  for (NnfId n : list) num_edges += mgr.children(n).size();

  // Build the section payloads as little-endian byte arrays.
  std::vector<uint8_t> kinds(num_nodes);
  std::vector<uint8_t> payloads(size_t{num_nodes} * 4);
  std::vector<uint8_t> child_begin((size_t{num_nodes} + 1) * 8);
  std::vector<uint8_t> children(num_edges * 4);
  uint64_t edge = 0;
  for (uint32_t i = 0; i < num_nodes; ++i) {
    const NnfId n = list[i];
    const Kind k = mgr.kind(n);
    kinds[i] = static_cast<uint8_t>(k);
    StoreLe32(&payloads[size_t{i} * 4],
              k == Kind::kLiteral ? mgr.lit(n).code() : 0);
    StoreLe64(&child_begin[size_t{i} * 8], edge);
    for (NnfId c : mgr.children(n)) {
      TBC_DCHECK(remap[c] < i);
      StoreLe32(&children[edge * 4], remap[c]);
      ++edge;
    }
  }
  StoreLe64(&child_begin[size_t{num_nodes} * 8], edge);
  TBC_CHECK(edge == num_edges);

  std::vector<uint8_t> model_count;
  if (options.model_count != nullptr) {
    const std::vector<uint64_t>& limbs = options.model_count->limbs();
    model_count.resize(limbs.size() * 8);
    for (size_t i = 0; i < limbs.size(); ++i) {
      StoreLe64(&model_count[i * 8], limbs[i]);
    }
  }

  struct SectionBytes {
    const uint8_t* data;
    uint64_t size;
  };
  const SectionBytes bytes[kNumSections] = {
      {kinds.data(), kinds.size()},
      {payloads.data(), payloads.size()},
      {child_begin.data(), child_begin.size()},
      {children.data(), children.size()},
      {reinterpret_cast<const uint8_t*>(options.cnf_text.data()),
       options.cnf_text.size()},
      {model_count.data(), model_count.size()},
  };

  StoreSection sections[kNumSections];
  uint64_t offset = kStoreDataOffset;
  for (uint32_t s = 0; s < kNumSections; ++s) {
    if (bytes[s].size == 0) continue;
    sections[s].offset = offset;
    sections[s].size = bytes[s].size;
    const ContentHash h = HashBytes(bytes[s].data, bytes[s].size);
    sections[s].checksum_lo = h.lo;
    sections[s].checksum_hi = h.hi;
    offset = AlignStoreOffset(offset + bytes[s].size);
  }

  StoreHeader hdr{};
  std::memcpy(hdr.magic, kStoreMagic, 8);
  hdr.version = kStoreVersion;
  hdr.flags = (options.cnf_text.empty() ? 0u : kFlagHasCnfText) |
              (options.model_count != nullptr ? kFlagHasModelCount : 0u);
  hdr.num_vars = num_vars;
  hdr.num_nodes = num_nodes;
  hdr.root = remap[root];
  hdr.num_edges = num_edges;
  hdr.num_sections = kNumSections;

  uint8_t head[kStoreDataOffset];
  EncodeHeader(hdr, sections, head);
  StoreLe64(head + offsetof(StoreHeader, header_checksum),
            FoldChecksum(HashBytes(head, kStoreDataOffset)));

  // Atomic publish: fully write + fsync a same-directory temp file, then
  // rename over the target. Readers never observe a torn store.
  const std::string tmp =
      path + ".tmp." + std::to_string(static_cast<long>(::getpid()));
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) return Status::Unavailable(Errno("open", tmp));
  Status st = WriteAll(fd, head, kStoreDataOffset, tmp);
  uint64_t written = kStoreDataOffset;
  for (uint32_t s = 0; s < kNumSections && st.ok(); ++s) {
    if (bytes[s].size == 0) continue;
    // Alignment padding between sections.
    static const uint8_t kZeros[8] = {0};
    if (sections[s].offset > written) {
      st = WriteAll(fd, kZeros, sections[s].offset - written, tmp);
      if (!st.ok()) break;
      written = sections[s].offset;
    }
    st = WriteAll(fd, bytes[s].data, bytes[s].size, tmp);
    written += bytes[s].size;
  }
  if (st.ok() && ::fsync(fd) != 0) st = Status::Unavailable(Errno("fsync", tmp));
  if (::close(fd) != 0 && st.ok()) st = Status::Unavailable(Errno("close", tmp));
  if (st.ok() && ::rename(tmp.c_str(), path.c_str()) != 0) {
    st = Status::Unavailable(Errno("rename", tmp));
  }
  if (!st.ok()) {
    ::unlink(tmp.c_str());
    return st;
  }
  TBC_COUNT("store.writes");
  return Status::Ok();
}

Result<std::shared_ptr<const MappedStore>> MappedStore::Open(
    const std::string& path) {
  // Reject path for foreign byte order: the zero-copy reader overlays
  // little-endian arrays, so a big-endian host must refuse rather than
  // misread. (The writer, which goes through the explicit LE helpers, is
  // portable either way.)
  if (!HostIsStoreCompatible()) {
    return Status::InvalidInput(
        "store: zero-copy mapping requires a little-endian host");
  }
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) return Status::Unavailable(Errno("open", path));
  struct stat sb;
  if (::fstat(fd, &sb) != 0) {
    const Status st = Status::Unavailable(Errno("fstat", path));
    ::close(fd);
    return st;
  }
  const uint64_t file_size = static_cast<uint64_t>(sb.st_size);

  // ---- Validation. Until every check below passes, the mapped bytes are
  // untrusted input: every count is bounded against the actual file size
  // before use, and nothing is allocated proportional to a claimed count.
  auto reject = [&](const std::string& why) {
    TBC_COUNT("store.open.rejected");
    return Status::InvalidInput("store " + path + ": " + why);
  };

  if (file_size < kStoreDataOffset) {
    ::close(fd);
    return reject("truncated header");
  }
  void* map = ::mmap(nullptr, file_size, PROT_READ, MAP_PRIVATE, fd, 0);
  ::close(fd);
  if (map == MAP_FAILED) return Status::Unavailable(Errno("mmap", path));
  std::shared_ptr<MappedStore> store(new MappedStore());
  store->map_ = map;
  store->map_size_ = file_size;
  const uint8_t* base = static_cast<const uint8_t*>(map);

  // mmap returns page-aligned memory; this is the documented reject path
  // (rather than UB) should a future mapping source break that.
  if ((reinterpret_cast<uintptr_t>(base) & 7u) != 0) {
    return reject("misaligned mapping base");
  }

  if (std::memcmp(base, kStoreMagic, 8) != 0) return reject("bad magic");
  StoreHeader hdr;
  std::memcpy(&hdr, base, sizeof(hdr));
  if (hdr.version != kStoreVersion) {
    return reject("unsupported format version " + std::to_string(hdr.version));
  }
  if (hdr.num_sections != kNumSections) return reject("bad section count");
  if (hdr.reserved0 != 0 || hdr.reserved1 != 0) {
    return reject("nonzero reserved header fields");
  }
  if ((hdr.flags & ~(kFlagHasCnfText | kFlagHasModelCount)) != 0) {
    return reject("unknown header flags");
  }
  {
    uint8_t head[kStoreDataOffset];
    std::memcpy(head, base, kStoreDataOffset);
    std::memset(head + offsetof(StoreHeader, header_checksum), 0, 8);
    if (FoldChecksum(HashBytes(head, kStoreDataOffset)) != hdr.header_checksum) {
      TBC_COUNT("store.open.checksum_failures");
      return reject("header checksum mismatch");
    }
  }
  if (hdr.num_nodes < 2) return reject("fewer than two nodes");
  if (hdr.root >= hdr.num_nodes) return reject("root id out of range");
  // Each edge takes 4 bytes, so a genuine edge count is below file_size;
  // rejecting here also keeps the size arithmetic below overflow-free.
  if (hdr.num_edges > file_size) return reject("edge count exceeds file size");

  // Section table: bounds, exact canonical offsets, exact sizes. Every
  // size/offset is checked against file_size with overflow-safe
  // arithmetic before any section is touched. The layout is fully
  // canonical — each non-empty section sits at the aligned end of its
  // predecessor, padding bytes are zero, and the file ends exactly after
  // the last section — so every byte of an accepted file is covered by a
  // checksum, a validated header field, or a required-zero constraint.
  const StoreSection* table =
      reinterpret_cast<const StoreSection*>(base + kStoreTableOffset);
  uint64_t prev_end = kStoreDataOffset;
  for (uint32_t s = 0; s < kNumSections; ++s) {
    const StoreSection& sec = table[s];
    if (sec.size == 0) {
      if (sec.offset != 0 || sec.checksum_lo != 0 || sec.checksum_hi != 0) {
        return reject("nonzero metadata on empty section");
      }
      continue;
    }
    if (sec.size > file_size) {
      return reject("section " + std::to_string(s) + " out of bounds");
    }
    if (sec.offset != AlignStoreOffset(prev_end)) {
      return reject("section " + std::to_string(s) + " at non-canonical offset");
    }
    if (sec.offset > file_size || sec.size > file_size - sec.offset) {
      return reject("section " + std::to_string(s) + " out of bounds");
    }
    for (uint64_t p = prev_end; p < sec.offset; ++p) {
      if (base[p] != 0) return reject("nonzero alignment padding");
    }
    prev_end = sec.offset + sec.size;
  }
  if (prev_end != file_size) return reject("trailing bytes after last section");

  const uint64_t n64 = hdr.num_nodes;
  if (table[kSectionKinds].size != n64) return reject("kinds section size");
  if (table[kSectionPayloads].size != n64 * 4) {
    return reject("payloads section size");
  }
  if (table[kSectionChildBegin].size != (n64 + 1) * 8) {
    return reject("child_begin section size");
  }
  if (table[kSectionChildren].size != hdr.num_edges * 4 ||
      (hdr.num_edges > 0) != (table[kSectionChildren].size > 0)) {
    return reject("children section size");
  }
  if (((hdr.flags & kFlagHasCnfText) != 0) !=
      (table[kSectionCnfText].size > 0)) {
    return reject("cnf_text flag/section mismatch");
  }
  const StoreSection& mc = table[kSectionModelCount];
  if ((hdr.flags & kFlagHasModelCount) == 0 && mc.size != 0) {
    return reject("model_count section without flag");
  }
  if (mc.size % 8 != 0) return reject("model_count section size");

  for (uint32_t s = 0; s < kNumSections; ++s) {
    const StoreSection& sec = table[s];
    if (sec.size == 0) continue;
    const ContentHash h = HashBytes(base + sec.offset, sec.size);
    if (h.lo != sec.checksum_lo || h.hi != sec.checksum_hi) {
      TBC_COUNT("store.open.checksum_failures");
      return reject("section " + std::to_string(s) + " checksum mismatch");
    }
  }

  // Structural invariants of the circuit arrays — everything
  // NnfManager::FromMapped's contract demands, so adopting the view is
  // sound. O(nodes + edges) over the mapped pages, no allocation.
  const uint8_t* kinds = base + table[kSectionKinds].offset;
  const uint32_t* payloads =
      reinterpret_cast<const uint32_t*>(base + table[kSectionPayloads].offset);
  const uint64_t* child_begin =
      reinterpret_cast<const uint64_t*>(base + table[kSectionChildBegin].offset);
  const uint32_t* children =
      hdr.num_edges == 0
          ? nullptr
          : reinterpret_cast<const uint32_t*>(base +
                                              table[kSectionChildren].offset);
  if (child_begin[0] != 0) return reject("child_begin[0] != 0");
  if (child_begin[hdr.num_nodes] != hdr.num_edges) {
    return reject("child_begin end != num_edges");
  }
  if (kinds[0] != static_cast<uint8_t>(Kind::kFalse) ||
      kinds[1] != static_cast<uint8_t>(Kind::kTrue)) {
    return reject("nodes 0/1 are not the constants");
  }
  for (uint64_t n = 0; n < hdr.num_nodes; ++n) {
    if (child_begin[n + 1] < child_begin[n] ||
        child_begin[n + 1] > hdr.num_edges) {
      return reject("child_begin not monotone");
    }
    const uint64_t degree = child_begin[n + 1] - child_begin[n];
    const uint8_t k = kinds[n];
    switch (static_cast<Kind>(k)) {
      case Kind::kFalse:
      case Kind::kTrue:
        if (n >= 2) return reject("duplicate constant node");
        if (degree != 0 || payloads[n] != 0) return reject("malformed constant");
        break;
      case Kind::kLiteral: {
        if (degree != 0) return reject("literal node with children");
        const uint64_t var = payloads[n] >> 1;
        if (var >= hdr.num_vars) return reject("literal variable out of range");
        break;
      }
      case Kind::kAnd:
      case Kind::kOr:
        if (payloads[n] != 0) return reject("gate node with payload");
        if (degree < 2) return reject("gate with fewer than two children");
        for (uint64_t e = child_begin[n]; e < child_begin[n + 1]; ++e) {
          if (children[e] >= n) return reject("child id not below parent");
        }
        break;
      default:
        return reject("unknown node kind " + std::to_string(k));
    }
  }

  if (mc.size > 0 || (hdr.flags & kFlagHasModelCount) != 0) {
    // Limb count is bounded by the (validated, in-bounds) section size.
    const uint8_t* p = mc.size == 0 ? nullptr : base + mc.offset;
    std::vector<uint64_t> limbs(mc.size / 8);
    for (size_t i = 0; i < limbs.size(); ++i) limbs[i] = LoadLe64(p + i * 8);
    if (!BigUint::FromLimbs(std::move(limbs), &store->model_count_)) {
      return reject("non-canonical model count");
    }
    store->has_model_count_ = true;
  }
  if (table[kSectionCnfText].size > 0) {
    store->cnf_text_ = std::string_view(
        reinterpret_cast<const char*>(base + table[kSectionCnfText].offset),
        table[kSectionCnfText].size);
  }

  store->kinds_ = kinds;
  store->payloads_ = payloads;
  store->child_begin_ = child_begin;
  store->children_ = children;
  store->num_nodes_ = hdr.num_nodes;
  store->root_ = hdr.root;
  store->num_edges_ = hdr.num_edges;
  store->num_vars_ = hdr.num_vars;
  TBC_COUNT("store.opens");
  return std::shared_ptr<const MappedStore>(std::move(store));
}

MappedStore::~MappedStore() {
  if (map_ != nullptr) {
    ::munmap(const_cast<void*>(map_), map_size_);
  }
}

MappedCircuit MappedStore::Circuit() const {
  MappedCircuit view;
  view.kinds = kinds_;
  view.payloads = payloads_;
  view.child_begin = child_begin_;
  view.children = children_;
  view.num_nodes = num_nodes_;
  view.num_vars = num_vars_;
  view.owner = shared_from_this();
  return view;
}

Result<LoadedCircuit> LoadCircuitStore(const std::string& path) {
  TBC_ASSIGN_OR_RETURN(std::shared_ptr<const MappedStore> store,
                       MappedStore::Open(path));
  LoadedCircuit loaded;
  loaded.root = store->root();
  loaded.mgr = NnfManager::FromMapped(store->Circuit());
  loaded.store = std::move(store);
  return loaded;
}

}  // namespace tbc
