#include "core/kc_map.h"

#include "base/check.h"

namespace tbc {
namespace kc {

namespace {

// Row-per-language query support, following Darwiche & Marquis 2002
// (Table 7) and Darwiche 2011 for SDD. Column order matches enum Query.
struct QueryRow {
  Language lang;
  bool co, va, ce, im, eq, se, ct, me;
};
constexpr QueryRow kQueryTable[] = {
    //                        CO     VA     CE     IM     EQ     SE     CT     ME
    {Language::kNnf,          false, false, false, false, false, false, false, false},
    {Language::kDnnf,         true,  false, true,  false, false, false, false, true},
    {Language::kDDnnf,        true,  true,  true,  true,  false, false, true,  true},
    {Language::kDecisionDnnf, true,  true,  true,  true,  false, false, true,  true},
    {Language::kSdd,          true,  true,  true,  true,  true,  false, true,  true},
    {Language::kObdd,         true,  true,  true,  true,  true,  true,  true,  true},
    {Language::kCnf,          false, true,  false, true,  false, false, false, false},
    {Language::kDnf,          true,  false, true,  false, false, false, false, true},
    {Language::kPi,           true,  true,  true,  true,  true,  true,  false, true},
    {Language::kIp,           true,  true,  true,  true,  true,  true,  false, true},
};

struct TransRow {
  Language lang;
  bool cd, fo, sfo, andc, andbc, orc, orbc, notc;
};
constexpr TransRow kTransTable[] = {
    //                        CD     FO     SFO    ∧C     ∧BC    ∨C     ∨BC    ¬C
    {Language::kNnf,          true,  false, false, true,  true,  true,  true,  true},
    {Language::kDnnf,         true,  true,  true,  false, false, true,  true,  false},
    {Language::kDDnnf,        true,  false, false, false, false, false, false, false},
    {Language::kDecisionDnnf, true,  false, false, false, false, false, false, false},
    {Language::kSdd,          true,  false, true,  false, true,  false, true,  true},
    {Language::kObdd,         true,  false, true,  false, true,  false, true,  true},
    {Language::kCnf,          true,  false, true,  true,  true,  false, true,  false},
    {Language::kDnf,          true,  true,  true,  false, true,  true,  true,  false},
    {Language::kPi,           true,  true,  true,  false, false, false, false, false},
    {Language::kIp,           true,  false, false, false, false, false, false, false},
};

}  // namespace

bool SupportsQuery(Language lang, Query query) {
  for (const QueryRow& row : kQueryTable) {
    if (row.lang != lang) continue;
    switch (query) {
      case Query::kConsistency:
        return row.co;
      case Query::kValidity:
        return row.va;
      case Query::kClausalEntail:
        return row.ce;
      case Query::kImplicant:
        return row.im;
      case Query::kEquivalence:
        return row.eq;
      case Query::kSentenceEntail:
        return row.se;
      case Query::kModelCount:
        return row.ct;
      case Query::kModelEnum:
        return row.me;
    }
  }
  TBC_CHECK_MSG(false, "unknown language");
  return false;
}

bool SupportsTransformation(Language lang, Transformation t) {
  for (const TransRow& row : kTransTable) {
    if (row.lang != lang) continue;
    switch (t) {
      case Transformation::kCondition:
        return row.cd;
      case Transformation::kForget:
        return row.fo;
      case Transformation::kSingletonForget:
        return row.sfo;
      case Transformation::kConjoin:
        return row.andc;
      case Transformation::kConjoinBounded:
        return row.andbc;
      case Transformation::kDisjoin:
        return row.orc;
      case Transformation::kDisjoinBounded:
        return row.orbc;
      case Transformation::kNegate:
        return row.notc;
    }
  }
  TBC_CHECK_MSG(false, "unknown language");
  return false;
}

std::string ToString(Language lang) {
  switch (lang) {
    case Language::kNnf:
      return "NNF";
    case Language::kDnnf:
      return "DNNF";
    case Language::kDDnnf:
      return "d-DNNF";
    case Language::kDecisionDnnf:
      return "Decision-DNNF";
    case Language::kSdd:
      return "SDD";
    case Language::kObdd:
      return "OBDD";
    case Language::kCnf:
      return "CNF";
    case Language::kDnf:
      return "DNF";
    case Language::kPi:
      return "PI";
    case Language::kIp:
      return "IP";
  }
  return "?";
}

std::string ToString(Query query) {
  switch (query) {
    case Query::kConsistency:
      return "CO";
    case Query::kValidity:
      return "VA";
    case Query::kClausalEntail:
      return "CE";
    case Query::kImplicant:
      return "IM";
    case Query::kEquivalence:
      return "EQ";
    case Query::kSentenceEntail:
      return "SE";
    case Query::kModelCount:
      return "CT";
    case Query::kModelEnum:
      return "ME";
  }
  return "?";
}

std::string ToString(Transformation t) {
  switch (t) {
    case Transformation::kCondition:
      return "CD";
    case Transformation::kForget:
      return "FO";
    case Transformation::kSingletonForget:
      return "SFO";
    case Transformation::kConjoin:
      return "AND-C";
    case Transformation::kConjoinBounded:
      return "AND-BC";
    case Transformation::kDisjoin:
      return "OR-C";
    case Transformation::kDisjoinBounded:
      return "OR-BC";
    case Transformation::kNegate:
      return "NOT-C";
  }
  return "?";
}

std::vector<Language> AllLanguages() {
  return {Language::kNnf, Language::kDnnf,  Language::kDDnnf,
          Language::kDecisionDnnf, Language::kSdd, Language::kObdd,
          Language::kCnf, Language::kDnf,   Language::kPi,
          Language::kIp};
}

Language CheapestLanguageFor(const std::vector<Query>& queries) {
  // Succinctness chain of Fig 12: NNF ⊇ DNNF ⊇ d-DNNF ⊇ SDD ⊇ OBDD.
  for (Language lang : {Language::kNnf, Language::kDnnf, Language::kDDnnf,
                        Language::kSdd, Language::kObdd}) {
    bool ok = true;
    for (Query q : queries) ok &= SupportsQuery(lang, q);
    if (ok) return lang;
  }
  return Language::kObdd;
}

}  // namespace kc
}  // namespace tbc
