#ifndef TBC_CORE_DOT_H_
#define TBC_CORE_DOT_H_

#include <string>

#include "nnf/nnf.h"
#include "obdd/obdd.h"
#include "sdd/sdd.h"
#include "vtree/vtree.h"

namespace tbc {

/// Graphviz DOT exports for every circuit type — the visualizations the
/// paper's figures draw by hand (`dot -Tpdf` renders them). Variables can
/// be labeled through `names` (index = Var); empty uses x<i>.

std::string DotVtree(const Vtree& vtree,
                     const std::vector<std::string>& names = {});

/// OBDD in the classic style: solid high edge, dashed low edge.
std::string DotObdd(const ObddManager& mgr, ObddId f,
                    const std::vector<std::string>& names = {});

/// SDD in the paper's Fig 9/13 style: decision nodes as boxes of
/// (prime | sub) element pairs.
std::string DotSdd(const SddManager& mgr, SddId f,
                   const std::vector<std::string>& names = {});

/// NNF circuit with and/or/literal node shapes.
std::string DotNnf(const NnfManager& mgr, NnfId root,
                   const std::vector<std::string>& names = {});

}  // namespace tbc

#endif  // TBC_CORE_DOT_H_
