#include "core/solvers.h"

#include <algorithm>
#include <cmath>

#include "base/check.h"
#include "compiler/ddnnf_compiler.h"
#include "nnf/properties.h"
#include "nnf/queries.h"
#include "sdd/compile.h"
#include "sdd/sdd.h"
#include "vtree/vtree.h"

namespace tbc {

bool CircuitSolvers::DecideSat(const Cnf& cnf) {
  NnfManager mgr;
  DdnnfCompiler compiler;
  const NnfId root = compiler.Compile(cnf, mgr);
  return IsSatDnnf(mgr, root);
}

BigUint CircuitSolvers::CountSat(const Cnf& cnf) {
  NnfManager mgr;
  DdnnfCompiler compiler;
  const NnfId root = compiler.Compile(cnf, mgr);
  return ModelCount(mgr, root, cnf.num_vars());
}

double CircuitSolvers::WeightedModelCount(const Cnf& cnf,
                                          const WeightMap& weights) {
  NnfManager mgr;
  DdnnfCompiler compiler;
  const NnfId root = compiler.Compile(cnf, mgr);
  return Wmc(mgr, root, weights);
}

bool CircuitSolvers::DecideMajSat(const Cnf& cnf) {
  const BigUint count = CountSat(cnf);
  return count * BigUint(2) > BigUint::PowerOfTwo(
                                  static_cast<unsigned>(cnf.num_vars()));
}

BigUint CircuitSolvers::MaxCountOverY(const Cnf& cnf,
                                      const std::vector<Var>& y_vars) {
  // Compile over a constrained vtree (y on the top spine, Fig 10b), then
  // one max-sum pass on the smoothed export [Oztok, Choi & Darwiche 2016].
  std::vector<Var> bottom;
  for (Var v = 0; v < cnf.num_vars(); ++v) {
    if (std::find(y_vars.begin(), y_vars.end(), v) == y_vars.end()) {
      bottom.push_back(v);
    }
  }
  TBC_CHECK_MSG(!bottom.empty(), "E-MAJSAT needs at least one counting var");
  SddManager sdd(Vtree::Constrained(y_vars, bottom));
  const SddId f = CompileCnf(sdd, cnf);
  if (f == sdd.False()) return BigUint(0);
  NnfManager nnf;
  NnfId root = sdd.ToNnf(f, nnf);
  root = Smooth(nnf, root, cnf.num_vars());
  WeightMap ones(cnf.num_vars());
  const MaxSumResult r = MaxSumWmc(nnf, root, ones, y_vars);
  // Counts are exact in double up to 2^53; our workloads stay far below.
  return BigUint(static_cast<uint64_t>(std::llround(r.value)));
}

bool CircuitSolvers::DecideEMajSat(const Cnf& cnf,
                                   const std::vector<Var>& y_vars) {
  const size_t num_z = cnf.num_vars() - y_vars.size();
  return MaxCountOverY(cnf, y_vars) * BigUint(2) >
         BigUint::PowerOfTwo(static_cast<unsigned>(num_z));
}

bool CircuitSolvers::DecideMajMajSat(const Cnf& cnf,
                                     const std::vector<Var>& y_vars) {
  TBC_CHECK_MSG(y_vars.size() <= 24, "MAJMAJSAT enumeration limited to 24 y-vars");
  NnfManager mgr;
  DdnnfCompiler compiler;
  const NnfId root = compiler.Compile(cnf, mgr);
  const size_t num_z = cnf.num_vars() - y_vars.size();
  const double z_half = std::ldexp(1.0, static_cast<int>(num_z)) / 2.0;

  uint64_t majority_count = 0;
  const uint64_t num_y = 1ull << y_vars.size();
  for (uint64_t bits = 0; bits < num_y; ++bits) {
    // Assert y by zeroing the weights of the contradicted literals; the
    // counting pass is then linear per instantiation.
    WeightMap w(cnf.num_vars());
    for (size_t k = 0; k < y_vars.size(); ++k) {
      const bool value = (bits >> k) & 1;
      w.Set(Lit(y_vars[k], !value), 0.0);
    }
    if (Wmc(mgr, root, w) > z_half) ++majority_count;
  }
  return majority_count * 2 > num_y;
}

}  // namespace tbc
