#ifndef TBC_CORE_SOLVERS_H_
#define TBC_CORE_SOLVERS_H_

#include <vector>

#include "base/bigint.h"
#include "logic/cnf.h"

namespace tbc {

/// "Logic as a basis for computation" (paper §2-§3, Figs 1 and 3): the
/// prototypical complete problems of NP ⊆ PP ⊆ NP^PP ⊆ PP^PP, solved
/// systematically by compiling the formula into a tractable circuit of the
/// right type and running a polytime query on it:
///   SAT        — Decision-DNNF + linear satisfiability check      (NP)
///   MAJSAT/#SAT/WMC — Decision-DNNF + linear (weighted) counting  (PP)
///   E-MAJSAT   — SDD over a constrained vtree + max-sum pass      (NP^PP)
///   MAJMAJSAT  — compile once, then one linear counting pass per
///                majority-variable instantiation                  (PP^PP)
/// The MAJMAJSAT inner loop is exponential in |y| (the fully polytime
/// circuit algorithm of [Oztok, Choi & Darwiche 2016] is future work);
/// compilation is still the dominant cost it amortizes.
class CircuitSolvers {
 public:
  /// SAT: is there an input x with Δ(x) = 1?
  static bool DecideSat(const Cnf& cnf);

  /// #SAT: the number of such inputs (model counting).
  static BigUint CountSat(const Cnf& cnf);

  /// WMC: Σ_x Π_i W(x_i) over models (paper §2.1).
  static double WeightedModelCount(const Cnf& cnf, const WeightMap& weights);

  /// MAJSAT: do the majority of inputs satisfy Δ (count·2 > 2^n)?
  static bool DecideMajSat(const Cnf& cnf);

  /// E-MAJSAT: is there an input y (over y_vars) such that the majority of
  /// inputs z (the remaining variables) satisfy Δ(y, z)?
  static bool DecideEMajSat(const Cnf& cnf, const std::vector<Var>& y_vars);
  /// The witnessing maximum: max_y #{z : Δ(y, z) = 1}.
  static BigUint MaxCountOverY(const Cnf& cnf, const std::vector<Var>& y_vars);

  /// MAJMAJSAT: do the majority of inputs y have a majority of z with
  /// Δ(y, z) = 1?
  static bool DecideMajMajSat(const Cnf& cnf, const std::vector<Var>& y_vars);
};

}  // namespace tbc

#endif  // TBC_CORE_SOLVERS_H_
