#include "core/dot.h"

#include <functional>
#include <unordered_map>

namespace tbc {

namespace {

std::string NameOf(Var v, const std::vector<std::string>& names) {
  if (v < names.size()) return names[v];
  return "x" + std::to_string(v);
}

std::string LitLabel(Lit l, const std::vector<std::string>& names) {
  return (l.positive() ? "" : "~") + NameOf(l.var(), names);
}

}  // namespace

std::string DotVtree(const Vtree& vtree, const std::vector<std::string>& names) {
  std::string out = "digraph vtree {\n  node [shape=plaintext];\n";
  for (VtreeId v = 0; v < vtree.num_nodes(); ++v) {
    if (vtree.IsLeaf(v)) {
      out += "  n" + std::to_string(v) + " [label=\"" +
             NameOf(vtree.var(v), names) + "\"];\n";
    } else {
      out += "  n" + std::to_string(v) + " [label=\"" +
             std::to_string(vtree.position(v)) + "\" shape=circle];\n";
      out += "  n" + std::to_string(v) + " -> n" +
             std::to_string(vtree.left(v)) + ";\n";
      out += "  n" + std::to_string(v) + " -> n" +
             std::to_string(vtree.right(v)) + ";\n";
    }
  }
  return out + "}\n";
}

std::string DotObdd(const ObddManager& mgr, ObddId f,
                    const std::vector<std::string>& names) {
  std::string out =
      "digraph obdd {\n  t0 [label=\"0\" shape=box];\n  t1 [label=\"1\" "
      "shape=box];\n";
  std::unordered_map<ObddId, bool> seen;
  std::function<void(ObddId)> rec = [&](ObddId g) {
    if (mgr.IsTerminal(g) || seen[g]) return;
    seen[g] = true;
    out += "  n" + std::to_string(g) + " [label=\"" +
           NameOf(mgr.var(g), names) + "\" shape=circle];\n";
    auto edge = [&](ObddId child, const char* style) {
      const std::string target = mgr.IsTerminal(child)
                                     ? "t" + std::to_string(child)
                                     : "n" + std::to_string(child);
      out += "  n" + std::to_string(g) + " -> " + target + " [style=" + style +
             "];\n";
    };
    edge(mgr.lo(g), "dashed");
    edge(mgr.hi(g), "solid");
    rec(mgr.lo(g));
    rec(mgr.hi(g));
  };
  rec(f);
  if (mgr.IsTerminal(f)) {
    out += "  root -> t" + std::to_string(f) + ";\n";
  }
  return out + "}\n";
}

std::string DotSdd(const SddManager& mgr, SddId f,
                   const std::vector<std::string>& names) {
  std::string out = "digraph sdd {\n  node [shape=record];\n";
  std::unordered_map<SddId, bool> seen;
  std::function<std::string(SddId)> label = [&](SddId g) -> std::string {
    if (g == mgr.False()) return "F";
    if (g == mgr.True()) return "T";
    if (mgr.IsLiteral(g)) return LitLabel(mgr.literal(g), names);
    return "";  // decision nodes get their own record node
  };
  std::function<void(SddId)> rec = [&](SddId g) {
    if (!mgr.IsDecision(g) || seen[g]) return;
    seen[g] = true;
    // One record with an element cell per (prime, sub).
    std::string cells;
    size_t idx = 0;
    for (const auto& [p, s] : mgr.elements(g)) {
      if (idx > 0) cells += "|";
      const std::string pl = mgr.IsDecision(p) ? "*" : label(p);
      const std::string sl = mgr.IsDecision(s) ? "*" : label(s);
      cells += "{<p" + std::to_string(idx) + "> " + pl + "|<s" +
               std::to_string(idx) + "> " + sl + "}";
      ++idx;
    }
    out += "  n" + std::to_string(g) + " [label=\"" + cells + "\"];\n";
    idx = 0;
    for (const auto& [p, s] : mgr.elements(g)) {
      if (mgr.IsDecision(p)) {
        out += "  n" + std::to_string(g) + ":p" + std::to_string(idx) +
               " -> n" + std::to_string(p) + ";\n";
        rec(p);
      }
      if (mgr.IsDecision(s)) {
        out += "  n" + std::to_string(g) + ":s" + std::to_string(idx) +
               " -> n" + std::to_string(s) + ";\n";
        rec(s);
      }
      ++idx;
    }
  };
  if (mgr.IsDecision(f)) {
    rec(f);
  } else {
    out += "  n [label=\"" + label(f) + "\"];\n";
  }
  return out + "}\n";
}

std::string DotNnf(const NnfManager& mgr, NnfId root,
                   const std::vector<std::string>& names) {
  std::string out = "digraph nnf {\n";
  for (NnfId n : mgr.TopologicalOrder(root)) {
    std::string shape = "circle";
    std::string text;
    switch (mgr.kind(n)) {
      case NnfManager::Kind::kFalse:
        text = "0";
        shape = "box";
        break;
      case NnfManager::Kind::kTrue:
        text = "1";
        shape = "box";
        break;
      case NnfManager::Kind::kLiteral:
        text = LitLabel(mgr.lit(n), names);
        shape = "plaintext";
        break;
      case NnfManager::Kind::kAnd:
        text = "and";
        break;
      case NnfManager::Kind::kOr:
        text = "or";
        break;
    }
    out += "  n" + std::to_string(n) + " [label=\"" + text + "\" shape=" +
           shape + "];\n";
    for (NnfId c : mgr.children(n)) {
      out += "  n" + std::to_string(n) + " -> n" + std::to_string(c) + ";\n";
    }
  }
  return out + "}\n";
}

}  // namespace tbc
