#ifndef TBC_CORE_KC_MAP_H_
#define TBC_CORE_KC_MAP_H_

#include <string>
#include <vector>

namespace tbc {

/// The knowledge compilation map [Darwiche & Marquis 2002] (paper §3,
/// Fig 12): which queries and transformations each circuit language
/// supports in polytime. Encoded as data so tools can pick the cheapest
/// language supporting the queries they need, and so the taxonomy the
/// paper surveys is executable documentation.
namespace kc {

enum class Language {
  kNnf,           // negation normal form (no properties)
  kDnnf,          // decomposable
  kDDnnf,         // decomposable + deterministic
  kDecisionDnnf,  // decomposable + decision (what the compiler emits)
  kSdd,           // structured decomposability + strong determinism
  kObdd,          // ordered binary decision diagram
  kCnf,
  kDnf,
  kPi,  // prime implicates
  kIp,  // prime implicants
};

enum class Query {
  kConsistency,     // CO: satisfiability
  kValidity,        // VA
  kClausalEntail,   // CE: does the circuit entail a clause?
  kImplicant,       // IM: is a term an implicant?
  kEquivalence,     // EQ
  kSentenceEntail,  // SE: circuit-to-circuit entailment
  kModelCount,      // CT
  kModelEnum,       // ME: enumerate models with polynomial delay
};

enum class Transformation {
  kCondition,     // CD: conditioning on a literal
  kForget,        // FO: existential quantification of a set of variables
  kSingletonForget,  // SFO
  kConjoin,       // ∧C: conjoin a set
  kConjoinBounded,   // ∧BC: conjoin two
  kDisjoin,       // ∨C
  kDisjoinBounded,   // ∨BC
  kNegate,        // ¬C
};

/// True iff the language supports the query in polytime (entries follow
/// [Darwiche & Marquis 2002], Tables 7-8, with SDD per [Darwiche 2011]).
bool SupportsQuery(Language lang, Query query);
bool SupportsTransformation(Language lang, Transformation t);

std::string ToString(Language lang);
std::string ToString(Query query);
std::string ToString(Transformation t);

/// All languages, most succinct first along the NNF chain of Fig 12.
std::vector<Language> AllLanguages();

/// The cheapest (most succinct) circuit language in the NNF ⊃ DNNF ⊃
/// d-DNNF ⊃ SDD ⊃ OBDD chain supporting all given queries; Fig 12's
/// succinctness ordering drives the choice.
Language CheapestLanguageFor(const std::vector<Query>& queries);

}  // namespace kc
}  // namespace tbc

#endif  // TBC_CORE_KC_MAP_H_
