#ifndef TBC_CORE_PORTFOLIO_H_
#define TBC_CORE_PORTFOLIO_H_

#include <cstdint>
#include <string>
#include <vector>

#include "base/guard.h"
#include "base/result.h"
#include "base/thread_pool.h"
#include "bayes/network.h"

namespace tbc {

/// Which engine produced a portfolio answer.
enum class PortfolioEngine : uint8_t { kSdd, kDdnnf, kVarElim };

inline const char* PortfolioEngineName(PortfolioEngine e) {
  switch (e) {
    case PortfolioEngine::kSdd:
      return "sdd";
    case PortfolioEngine::kDdnnf:
      return "ddnnf";
    case PortfolioEngine::kVarElim:
      return "varelim";
  }
  return "unknown";
}

/// A portfolio answer: the value, the engine that produced it, and a
/// human-readable record of every engine that was tried and refused first.
struct PortfolioAnswer {
  double value = 0.0;
  PortfolioEngine engine = PortfolioEngine::kVarElim;
  std::vector<std::string> attempts;  // e.g. "sdd: deadline exceeded (...)"
};

/// Graceful-degradation facade for Bayesian-network queries: each engine is
/// tried in order — SDD compile + WMC, then top-down d-DNNF compile + WMC,
/// then direct variable elimination — and the first one to finish inside
/// its slice of the budget wins. Stage deadlines are carved from the
/// remaining overall deadline (1/3, then 1/2, then all of what is left),
/// so an early engine that stalls cannot starve the later, more robust
/// ones. A kInvalidInput from any engine aborts the cascade (the input
/// will not get better); refusals (deadline/budget/cancel) fall through.
/// If every engine refuses, the last refusal is returned.
///
/// With a pool of >1 threads the engines *race* instead of cascading: each
/// arm gets the full budget under its own guard, a finishing arm cancels
/// every arm it outranks, and the winner is selected by the same fixed
/// engine order — so the selection rule (lowest-index success) is
/// deterministic even though arm completion order is not.
Result<PortfolioAnswer> ProbEvidenceWithFallback(const BayesianNetwork& net,
                                                 const BnInstantiation& evidence,
                                                 const Budget& budget,
                                                 ThreadPool* pool = nullptr);

/// Unnormalized marginal Pr(v = value, evidence) with the same cascade.
/// Evidence contradicting v = value is kInvalidInput.
Result<PortfolioAnswer> MarginalWithFallback(const BayesianNetwork& net,
                                             BnVar v, int value,
                                             const BnInstantiation& evidence,
                                             const Budget& budget,
                                             ThreadPool* pool = nullptr);

/// Pr(v = value | evidence) with the same cascade; zero-probability
/// evidence is kInvalidInput.
Result<PortfolioAnswer> PosteriorWithFallback(const BayesianNetwork& net,
                                              BnVar v, int value,
                                              const BnInstantiation& evidence,
                                              const Budget& budget,
                                              ThreadPool* pool = nullptr);

}  // namespace tbc

#endif  // TBC_CORE_PORTFOLIO_H_
