#include "core/portfolio.h"

#include <array>
#include <functional>
#include <memory>
#include <mutex>
#include <numeric>
#include <optional>
#include <utility>

#include "analysis/structure/forecast.h"
#include "base/observability.h"
#include "base/timer.h"
#include "bayes/varelim.h"
#include "bayes/wmc_encoding.h"
#include "compiler/ddnnf_compiler.h"
#include "nnf/nnf.h"
#include "nnf/queries.h"
#include "sdd/compile.h"
#include "sdd/sdd.h"
#include "vtree/vtree.h"

#ifdef TBC_VALIDATE
#include "analysis/validate.h"
#endif

namespace tbc {

namespace {

// A query is Pr(evidence) or, with `query_var` set, the pair
// (Pr(extended evidence), Pr(evidence)) for marginals/posteriors. Each
// engine evaluates it under its own stage guard.
struct Query {
  const BayesianNetwork& net;
  const BnInstantiation& evidence;   // original evidence
  const BnInstantiation& extended;   // evidence with v = value asserted
  BnVar v = 0;                       // query variable (marginal/posterior)
  int value = 0;
  bool wants_posterior = false;      // divide by Pr(evidence)
  bool wants_marginal = false;       // evaluate `extended` instead
  /// Structure plan for this query's CNF encoding (set by RunPortfolio):
  /// supplies the SDD arm's vtree and the stage routing below. May be null
  /// (plan computation is best-effort); arms must fall back gracefully.
  const StructureReport* plan = nullptr;
};

// Evaluates the query on a compiled circuit via two linear WMC passes.
// `wmc` maps a WeightMap to the weighted count on the compiled circuit.
Result<double> Answer(const Query& q, const WmcEncoding& enc,
                      const std::function<double(const WeightMap&)>& wmc) {
  if (!q.wants_posterior) {
    const auto& target = q.wants_marginal ? q.extended : q.evidence;
    return wmc(enc.WeightsWithEvidence(target));
  }
  const double pe = wmc(enc.WeightsWithEvidence(q.evidence));
  if (pe <= 0.0) return Status::InvalidInput("zero-probability evidence");
  return wmc(enc.WeightsWithEvidence(q.extended)) / pe;
}

// The SDD arm's vtree: synthesized from the plan's best elimination order
// when available (WmcEncoding is deterministic, so the plan's variable
// indices — computed from an identical encoding of the same network —
// match this one's), else the legacy balanced vtree over variable order.
Vtree VtreeForQuery(const Query& q, const WmcEncoding& enc) {
  if (q.plan != nullptr && !q.plan->candidates.empty() &&
      q.plan->num_vars == enc.num_bool_vars()) {
    return VtreeForCnf(*q.plan);
  }
  std::vector<Var> order(enc.num_bool_vars());
  std::iota(order.begin(), order.end(), 0);
  return Vtree::Balanced(order);
}

Result<double> RunSdd(const Query& q, Guard& guard) {
  WmcEncoding enc(q.net);
  SddManager mgr(VtreeForQuery(q, enc));
  TBC_ASSIGN_OR_RETURN(SddId f, CompileCnfBounded(mgr, enc.cnf(), guard));
  // The compile loop auto-minimizes on growth (when the process-wide
  // policy is on); one more pass at the artifact boundary catches the
  // post-compile plateau before the repeated WMC evaluations below.
  f = mgr.MaybeAutoMinimize(f);
#ifdef TBC_VALIDATE
  // The answer below is only as trustworthy as the circuit it is read off
  // of — re-verify the winning engine's artifact before evaluating.
  ValidateSddOrDie(mgr, f, "Portfolio::RunSdd");
#endif
  return Answer(q, enc, [&](const WeightMap& w) { return mgr.Wmc(f, w); });
}

Result<double> RunDdnnf(const Query& q, Guard& guard) {
  WmcEncoding enc(q.net);
  NnfManager mgr;
  DdnnfCompiler compiler;
  TBC_ASSIGN_OR_RETURN(const NnfId root,
                       compiler.CompileBounded(enc.cnf(), mgr, guard));
#ifdef TBC_VALIDATE
  ValidateNnfOrDie(mgr, root, NnfDialect::kDecisionDnnf, enc.cnf().num_vars(),
                   "Portfolio::RunDdnnf");
#endif
  return Answer(q, enc,
                [&](const WeightMap& w) { return Wmc(mgr, root, w); });
}

Result<double> RunVarElim(const Query& q, Guard& guard) {
  VariableElimination ve(q.net);
  if (q.wants_posterior) {
    // PosteriorBounded re-checks the variable/value bounds (already
    // validated by the facade) and rejects zero-probability evidence.
    return ve.PosteriorBounded(q.v, q.value, q.evidence, guard);
  }
  const auto& target = q.wants_marginal ? q.extended : q.evidence;
  return ve.ProbEvidenceBounded(target, guard);
}

using Stage =
    std::pair<PortfolioEngine, Result<double> (*)(const Query&, Guard&)>;
constexpr std::array<Stage, 3> kStages = {
    Stage{PortfolioEngine::kSdd, RunSdd},
    Stage{PortfolioEngine::kDdnnf, RunDdnnf},
    Stage{PortfolioEngine::kVarElim, RunVarElim},
};

// Above this predicted induced width, the compile arms are forecast to be
// hopeless within any reasonable budget (nodes scale with 2^w), so the
// serial portfolio runs variable elimination first — same 2^w core cost,
// none of the circuit-construction constant factor — and demotes the
// compilers to fallbacks. The forecast only *routes*; each arm's Guard
// remains the enforcer (DESIGN.md "Structure analysis & cost forecasting").
constexpr uint32_t kVarElimFirstWidth = 20;

// Work budget for the planning analysis (DynGraph pair-inspection units,
// see elimination.h). Planning advises — it must never cost a noticeable
// slice of the budget it is routing, and on encodings with dense primal
// graphs the elimination simulation is cubic-ish, so it runs under a
// fixed deterministic cap and degrades to lower-bound-only routing.
constexpr uint64_t kPlanWorkBudget = uint64_t{1} << 24;

// Per-query routing decision derived from the static structure pass.
struct StagePlan {
  StructureReport report;
  bool valid = false;  // false: planning skipped, fall back to defaults
  // Execution order as indices into kStages, and the deadline divisor for
  // each *position* (first stage gets remaining/share[0], etc.).
  std::array<size_t, kStages.size()> order{{0, 1, 2}};
  std::array<double, kStages.size()> deadline_share{{3.0, 2.0, 1.0}};
};

// Plans under the caller's outer guard: the guard is armed before this
// runs, so analysis time is charged against the query deadline like any
// other work, and an already-expired guard skips planning outright. The
// analysis itself is work-capped (kPlanWorkBudget), so even un-deadlined
// budgets cannot stall here on a dense encoding.
StagePlan PlanStages(const Query& q, const Guard& outer) {
  StagePlan plan;
  if (!outer.Check().ok()) return plan;  // no budget left: legacy defaults
  WmcEncoding enc(q.net);
  StructureOptions opts;
  opts.compute_backbone = false;  // routing needs widths only
  opts.work_budget = kPlanWorkBudget;
  plan.report = AnalyzeCnfStructure(enc.cnf(), opts);
  plan.valid = true;
  TBC_OBSERVE_VALUE("portfolio.plan.width", plan.report.best_width());
  // Route on the best information available: a completed order's width,
  // or — when the analysis truncated with no completed order — the
  // degeneracy lower bound (if even the lower bound is over the
  // threshold, the compile arms are certainly in 2^w trouble).
  if (std::max(plan.report.best_width(), plan.report.width_lower_bound) >
      kVarElimFirstWidth) {
    plan.order = {2, 0, 1};
    // VE gets the first half of the deadline, SDD half the rest.
    plan.deadline_share = {2.0, 2.0, 1.0};
    TBC_COUNT("portfolio.plan.varelim_first");
  }
  return plan;
}

// Runs arm i and records its wall time under "portfolio.arm.<engine>.us"
// plus a refusal counter when it fails. Dynamic-name metrics: at most
// three registry lookups per query, far off any hot path.
Result<double> RunStageTimed(size_t i, const Query& q, Guard& guard) {
  const Timer timer;
  Result<double> r = kStages[i].second(q, guard);
  const std::string arm =
      std::string("portfolio.arm.") + PortfolioEngineName(kStages[i].first);
  TBC_OBSERVE_VALUE_DYN(arm + ".us", timer.Millis() * 1e3);
  if (!r.ok()) TBC_COUNT_DYN(arm + ".refusals");
  return r;
}

void CountWin(size_t i) {
  TBC_COUNT_DYN(std::string("portfolio.arm.") +
                PortfolioEngineName(kStages[i].first) + ".wins");
}

// Racing mode: every arm runs concurrently with the full budget under its
// own pre-created guard. An arm that finishes successfully cancels all the
// arms it outranks (they can no longer win); arms that outrank it keep
// running, because they would take priority if they succeed. The winner is
// then selected serially in fixed engine order, so the selection rule is
// deterministic even though completion order is not.
Result<PortfolioAnswer> RunPortfolioParallel(const Query& q,
                                             const Budget& budget,
                                             ThreadPool& pool) {
  std::array<std::unique_ptr<Guard>, kStages.size()> guards;
  for (auto& g : guards) g = std::make_unique<Guard>(budget);
  std::array<std::optional<Result<double>>, kStages.size()> results;
  std::mutex mu;
  const std::function<void(size_t)> body = [&](size_t i) {
    Result<double> r = RunStageTimed(i, q, *guards[i]);
    std::lock_guard<std::mutex> lock(mu);
    if (r.ok()) {
      for (size_t j = i + 1; j < kStages.size(); ++j) {
        guards[j]->Cancel();
        TBC_COUNT("portfolio.cancellations");
      }
    }
    results[i] = std::move(r);
  };
  // No pool-level guard: each arm is already bounded by its own guard, and
  // a late trip must not discard an earlier arm's success.
  (void)pool.ParallelFor(0, kStages.size(), 1, body, nullptr);

  PortfolioAnswer answer;
  Status last_refusal = Status::DeadlineExceeded("no engine attempted");
  for (size_t i = 0; i < kStages.size(); ++i) {
    if (results[i].has_value() && results[i]->ok()) {
      answer.value = **results[i];
      answer.engine = kStages[i].first;
      CountWin(i);
      return answer;
    }
    if (results[i].has_value() &&
        results[i]->error_code() == StatusCode::kInvalidInput) {
      return results[i]->status();
    }
    const Status s = results[i].has_value() ? results[i]->status()
                                            : Status::Cancelled("arm skipped");
    answer.attempts.push_back(
        std::string(PortfolioEngineName(kStages[i].first)) + ": " + s.message());
    last_refusal = s;
  }
  return last_refusal;
}

Result<PortfolioAnswer> RunPortfolio(const Query& q, const Budget& budget,
                                     ThreadPool* pool) {
  TBC_SPAN("portfolio.run");
  // The outer guard is armed *before* planning, so the static analysis is
  // charged to the caller's deadline like every other cost — stage guards
  // below are derived from what remains after it.
  Guard outer(budget);
  const StagePlan plan = PlanStages(q, outer);
  Query planned = q;
  planned.plan = plan.valid ? &plan.report : nullptr;
  if (pool != nullptr && pool->num_threads() > 1) {
    // Racing mode runs every arm regardless of the forecast — the race
    // discovers the cheapest arm empirically, and reordering would change
    // the deterministic ranking. The plan still supplies the SDD vtree.
    return RunPortfolioParallel(planned, budget, *pool);
  }
  // Each stage gets a fresh guard with a slice of whatever deadline is
  // left: 1/3 for the first engine, 1/2 of the remainder for the second,
  // everything for the last (shares shift under a varelim-first plan). The
  // node budget is not divided — it caps the size of any one attempt, not
  // their sum.
  PortfolioAnswer answer;
  Status last_refusal = Status::DeadlineExceeded("no engine attempted");
  for (size_t k = 0; k < kStages.size(); ++k) {
    const size_t i = plan.order[k];
    TBC_RETURN_IF_ERROR(outer.Check());
    Budget stage_budget;
    if (outer.has_deadline()) {
      stage_budget.timeout_ms = outer.RemainingMs() / plan.deadline_share[k];
    }
    stage_budget.max_nodes = budget.max_nodes;
    stage_budget.max_conflicts = budget.max_conflicts;
    stage_budget.max_decisions = budget.max_decisions;
    Guard stage_guard(stage_budget);
    Result<double> r = RunStageTimed(i, planned, stage_guard);
    if (r.ok()) {
      answer.value = *r;
      answer.engine = kStages[i].first;
      CountWin(i);
      return answer;
    }
    if (r.error_code() == StatusCode::kInvalidInput) return r.status();
    answer.attempts.push_back(std::string(PortfolioEngineName(kStages[i].first)) +
                              ": " + r.status().message());
    last_refusal = r.status();
  }
  return last_refusal;
}

Status ValidateQueryVar(const BayesianNetwork& net, BnVar v, int value,
                        const BnInstantiation& evidence) {
  if (net.num_vars() == 0) return Status::InvalidInput("empty network");
  if (v >= net.num_vars()) {
    return Status::InvalidInput("variable " + std::to_string(v) +
                                " out of range");
  }
  if (value < 0 || value >= static_cast<int>(net.cardinality(v))) {
    return Status::InvalidInput("value " + std::to_string(value) +
                                " out of range for variable " +
                                std::to_string(v));
  }
  if (v < evidence.size() && evidence[v] != kUnobserved &&
      evidence[v] != value) {
    return Status::InvalidInput("query contradicts evidence on variable " +
                                std::to_string(v));
  }
  return Status::Ok();
}

}  // namespace

Result<PortfolioAnswer> ProbEvidenceWithFallback(const BayesianNetwork& net,
                                                 const BnInstantiation& evidence,
                                                 const Budget& budget,
                                                 ThreadPool* pool) {
  if (net.num_vars() == 0) return Status::InvalidInput("empty network");
  Query q{net, evidence, evidence};
  return RunPortfolio(q, budget, pool);
}

Result<PortfolioAnswer> MarginalWithFallback(const BayesianNetwork& net,
                                             BnVar v, int value,
                                             const BnInstantiation& evidence,
                                             const Budget& budget,
                                             ThreadPool* pool) {
  TBC_RETURN_IF_ERROR(ValidateQueryVar(net, v, value, evidence));
  BnInstantiation extended = evidence;
  extended.resize(net.num_vars(), kUnobserved);
  extended[v] = value;
  Query q{net, evidence, extended, v, value};
  q.wants_marginal = true;
  return RunPortfolio(q, budget, pool);
}

Result<PortfolioAnswer> PosteriorWithFallback(const BayesianNetwork& net,
                                              BnVar v, int value,
                                              const BnInstantiation& evidence,
                                              const Budget& budget,
                                              ThreadPool* pool) {
  TBC_RETURN_IF_ERROR(ValidateQueryVar(net, v, value, evidence));
  BnInstantiation extended = evidence;
  extended.resize(net.num_vars(), kUnobserved);
  extended[v] = value;
  Query q{net, evidence, extended, v, value};
  q.wants_posterior = true;
  return RunPortfolio(q, budget, pool);
}

}  // namespace tbc
