#include "core/portfolio.h"

#include <array>
#include <functional>
#include <memory>
#include <mutex>
#include <numeric>
#include <optional>
#include <utility>

#include "base/observability.h"
#include "base/timer.h"
#include "bayes/varelim.h"
#include "bayes/wmc_encoding.h"
#include "compiler/ddnnf_compiler.h"
#include "nnf/nnf.h"
#include "nnf/queries.h"
#include "sdd/compile.h"
#include "sdd/sdd.h"
#include "vtree/vtree.h"

#ifdef TBC_VALIDATE
#include "analysis/validate.h"
#endif

namespace tbc {

namespace {

// A query is Pr(evidence) or, with `query_var` set, the pair
// (Pr(extended evidence), Pr(evidence)) for marginals/posteriors. Each
// engine evaluates it under its own stage guard.
struct Query {
  const BayesianNetwork& net;
  const BnInstantiation& evidence;   // original evidence
  const BnInstantiation& extended;   // evidence with v = value asserted
  BnVar v = 0;                       // query variable (marginal/posterior)
  int value = 0;
  bool wants_posterior = false;      // divide by Pr(evidence)
  bool wants_marginal = false;       // evaluate `extended` instead
};

// Evaluates the query on a compiled circuit via two linear WMC passes.
// `wmc` maps a WeightMap to the weighted count on the compiled circuit.
Result<double> Answer(const Query& q, const WmcEncoding& enc,
                      const std::function<double(const WeightMap&)>& wmc) {
  if (!q.wants_posterior) {
    const auto& target = q.wants_marginal ? q.extended : q.evidence;
    return wmc(enc.WeightsWithEvidence(target));
  }
  const double pe = wmc(enc.WeightsWithEvidence(q.evidence));
  if (pe <= 0.0) return Status::InvalidInput("zero-probability evidence");
  return wmc(enc.WeightsWithEvidence(q.extended)) / pe;
}

Result<double> RunSdd(const Query& q, Guard& guard) {
  WmcEncoding enc(q.net);
  std::vector<Var> order(enc.num_bool_vars());
  std::iota(order.begin(), order.end(), 0);
  SddManager mgr(Vtree::Balanced(order));
  TBC_ASSIGN_OR_RETURN(const SddId f, CompileCnfBounded(mgr, enc.cnf(), guard));
#ifdef TBC_VALIDATE
  // The answer below is only as trustworthy as the circuit it is read off
  // of — re-verify the winning engine's artifact before evaluating.
  ValidateSddOrDie(mgr, f, "Portfolio::RunSdd");
#endif
  return Answer(q, enc, [&](const WeightMap& w) { return mgr.Wmc(f, w); });
}

Result<double> RunDdnnf(const Query& q, Guard& guard) {
  WmcEncoding enc(q.net);
  NnfManager mgr;
  DdnnfCompiler compiler;
  TBC_ASSIGN_OR_RETURN(const NnfId root,
                       compiler.CompileBounded(enc.cnf(), mgr, guard));
#ifdef TBC_VALIDATE
  ValidateNnfOrDie(mgr, root, NnfDialect::kDecisionDnnf, enc.cnf().num_vars(),
                   "Portfolio::RunDdnnf");
#endif
  return Answer(q, enc,
                [&](const WeightMap& w) { return Wmc(mgr, root, w); });
}

Result<double> RunVarElim(const Query& q, Guard& guard) {
  VariableElimination ve(q.net);
  if (q.wants_posterior) {
    // PosteriorBounded re-checks the variable/value bounds (already
    // validated by the facade) and rejects zero-probability evidence.
    return ve.PosteriorBounded(q.v, q.value, q.evidence, guard);
  }
  const auto& target = q.wants_marginal ? q.extended : q.evidence;
  return ve.ProbEvidenceBounded(target, guard);
}

using Stage =
    std::pair<PortfolioEngine, Result<double> (*)(const Query&, Guard&)>;
constexpr std::array<Stage, 3> kStages = {
    Stage{PortfolioEngine::kSdd, RunSdd},
    Stage{PortfolioEngine::kDdnnf, RunDdnnf},
    Stage{PortfolioEngine::kVarElim, RunVarElim},
};

// Runs arm i and records its wall time under "portfolio.arm.<engine>.us"
// plus a refusal counter when it fails. Dynamic-name metrics: at most
// three registry lookups per query, far off any hot path.
Result<double> RunStageTimed(size_t i, const Query& q, Guard& guard) {
  const Timer timer;
  Result<double> r = kStages[i].second(q, guard);
  const std::string arm =
      std::string("portfolio.arm.") + PortfolioEngineName(kStages[i].first);
  TBC_OBSERVE_VALUE_DYN(arm + ".us", timer.Millis() * 1e3);
  if (!r.ok()) TBC_COUNT_DYN(arm + ".refusals");
  return r;
}

void CountWin(size_t i) {
  TBC_COUNT_DYN(std::string("portfolio.arm.") +
                PortfolioEngineName(kStages[i].first) + ".wins");
}

// Racing mode: every arm runs concurrently with the full budget under its
// own pre-created guard. An arm that finishes successfully cancels all the
// arms it outranks (they can no longer win); arms that outrank it keep
// running, because they would take priority if they succeed. The winner is
// then selected serially in fixed engine order, so the selection rule is
// deterministic even though completion order is not.
Result<PortfolioAnswer> RunPortfolioParallel(const Query& q,
                                             const Budget& budget,
                                             ThreadPool& pool) {
  std::array<std::unique_ptr<Guard>, kStages.size()> guards;
  for (auto& g : guards) g = std::make_unique<Guard>(budget);
  std::array<std::optional<Result<double>>, kStages.size()> results;
  std::mutex mu;
  const std::function<void(size_t)> body = [&](size_t i) {
    Result<double> r = RunStageTimed(i, q, *guards[i]);
    std::lock_guard<std::mutex> lock(mu);
    if (r.ok()) {
      for (size_t j = i + 1; j < kStages.size(); ++j) {
        guards[j]->Cancel();
        TBC_COUNT("portfolio.cancellations");
      }
    }
    results[i] = std::move(r);
  };
  // No pool-level guard: each arm is already bounded by its own guard, and
  // a late trip must not discard an earlier arm's success.
  (void)pool.ParallelFor(0, kStages.size(), 1, body, nullptr);

  PortfolioAnswer answer;
  Status last_refusal = Status::DeadlineExceeded("no engine attempted");
  for (size_t i = 0; i < kStages.size(); ++i) {
    if (results[i].has_value() && results[i]->ok()) {
      answer.value = **results[i];
      answer.engine = kStages[i].first;
      CountWin(i);
      return answer;
    }
    if (results[i].has_value() &&
        results[i]->error_code() == StatusCode::kInvalidInput) {
      return results[i]->status();
    }
    const Status s = results[i].has_value() ? results[i]->status()
                                            : Status::Cancelled("arm skipped");
    answer.attempts.push_back(
        std::string(PortfolioEngineName(kStages[i].first)) + ": " + s.message());
    last_refusal = s;
  }
  return last_refusal;
}

Result<PortfolioAnswer> RunPortfolio(const Query& q, const Budget& budget,
                                     ThreadPool* pool) {
  TBC_SPAN("portfolio.run");
  if (pool != nullptr && pool->num_threads() > 1) {
    return RunPortfolioParallel(q, budget, *pool);
  }
  // Each stage gets a fresh guard with a slice of whatever deadline is
  // left: 1/3 for the first engine, 1/2 of the remainder for the second,
  // everything for the last. The node budget is not divided — it caps the
  // size of any one attempt, not their sum.
  constexpr std::array<double, 3> kDeadlineShare = {3.0, 2.0, 1.0};
  Guard outer(budget);
  PortfolioAnswer answer;
  Status last_refusal = Status::DeadlineExceeded("no engine attempted");
  for (size_t i = 0; i < kStages.size(); ++i) {
    TBC_RETURN_IF_ERROR(outer.Check());
    Budget stage_budget;
    if (outer.has_deadline()) {
      stage_budget.timeout_ms = outer.RemainingMs() / kDeadlineShare[i];
    }
    stage_budget.max_nodes = budget.max_nodes;
    stage_budget.max_conflicts = budget.max_conflicts;
    stage_budget.max_decisions = budget.max_decisions;
    Guard stage_guard(stage_budget);
    Result<double> r = RunStageTimed(i, q, stage_guard);
    if (r.ok()) {
      answer.value = *r;
      answer.engine = kStages[i].first;
      CountWin(i);
      return answer;
    }
    if (r.error_code() == StatusCode::kInvalidInput) return r.status();
    answer.attempts.push_back(std::string(PortfolioEngineName(kStages[i].first)) +
                              ": " + r.status().message());
    last_refusal = r.status();
  }
  return last_refusal;
}

Status ValidateQueryVar(const BayesianNetwork& net, BnVar v, int value,
                        const BnInstantiation& evidence) {
  if (net.num_vars() == 0) return Status::InvalidInput("empty network");
  if (v >= net.num_vars()) {
    return Status::InvalidInput("variable " + std::to_string(v) +
                                " out of range");
  }
  if (value < 0 || value >= static_cast<int>(net.cardinality(v))) {
    return Status::InvalidInput("value " + std::to_string(value) +
                                " out of range for variable " +
                                std::to_string(v));
  }
  if (v < evidence.size() && evidence[v] != kUnobserved &&
      evidence[v] != value) {
    return Status::InvalidInput("query contradicts evidence on variable " +
                                std::to_string(v));
  }
  return Status::Ok();
}

}  // namespace

Result<PortfolioAnswer> ProbEvidenceWithFallback(const BayesianNetwork& net,
                                                 const BnInstantiation& evidence,
                                                 const Budget& budget,
                                                 ThreadPool* pool) {
  if (net.num_vars() == 0) return Status::InvalidInput("empty network");
  Query q{net, evidence, evidence};
  return RunPortfolio(q, budget, pool);
}

Result<PortfolioAnswer> MarginalWithFallback(const BayesianNetwork& net,
                                             BnVar v, int value,
                                             const BnInstantiation& evidence,
                                             const Budget& budget,
                                             ThreadPool* pool) {
  TBC_RETURN_IF_ERROR(ValidateQueryVar(net, v, value, evidence));
  BnInstantiation extended = evidence;
  extended.resize(net.num_vars(), kUnobserved);
  extended[v] = value;
  Query q{net, evidence, extended, v, value};
  q.wants_marginal = true;
  return RunPortfolio(q, budget, pool);
}

Result<PortfolioAnswer> PosteriorWithFallback(const BayesianNetwork& net,
                                              BnVar v, int value,
                                              const BnInstantiation& evidence,
                                              const Budget& budget,
                                              ThreadPool* pool) {
  TBC_RETURN_IF_ERROR(ValidateQueryVar(net, v, value, evidence));
  BnInstantiation extended = evidence;
  extended.resize(net.num_vars(), kUnobserved);
  extended[v] = value;
  Query q{net, evidence, extended, v, value};
  q.wants_posterior = true;
  return RunPortfolio(q, budget, pool);
}

}  // namespace tbc
