#include "vtree/vtree.h"

#include <algorithm>
#include <cstdio>
#include <functional>
#include <unordered_map>

#include "base/check.h"

namespace tbc {

VtreeId Vtree::AddLeaf(Var v) {
  Node n;
  n.var = v;
  n.num_vars_below = 1;
  nodes_.push_back(n);
  if (leaf_of_var_.size() <= v) leaf_of_var_.resize(v + 1, kInvalidVtree);
  TBC_CHECK_MSG(leaf_of_var_[v] == kInvalidVtree, "variable appears twice in vtree");
  leaf_of_var_[v] = static_cast<VtreeId>(nodes_.size() - 1);
  return leaf_of_var_[v];
}

VtreeId Vtree::AddInternal(VtreeId l, VtreeId r) {
  Node n;
  n.left = l;
  n.right = r;
  n.num_vars_below = nodes_[l].num_vars_below + nodes_[r].num_vars_below;
  nodes_.push_back(n);
  const VtreeId id = static_cast<VtreeId>(nodes_.size() - 1);
  nodes_[l].parent = id;
  nodes_[r].parent = id;
  return id;
}

void Vtree::Finalize() {
  // Assign in-order positions iteratively.
  uint32_t next = 0;
  std::vector<std::pair<VtreeId, int>> stack = {{root_, 0}};
  while (!stack.empty()) {
    auto& [v, state] = stack.back();
    if (IsLeaf(v)) {
      nodes_[v].position = next++;
      stack.pop_back();
    } else if (state == 0) {
      state = 1;
      stack.push_back({nodes_[v].left, 0});
    } else if (state == 1) {
      nodes_[v].position = next++;
      state = 2;
      stack.push_back({nodes_[v].right, 0});
    } else {
      stack.pop_back();
    }
  }
}

Vtree Vtree::RightLinear(const std::vector<Var>& order) {
  TBC_CHECK(!order.empty());
  Vtree t;
  VtreeId acc = t.AddLeaf(order.back());
  for (size_t i = order.size() - 1; i-- > 0;) {
    acc = t.AddInternal(t.AddLeaf(order[i]), acc);
  }
  t.root_ = acc;
  t.Finalize();
  return t;
}

Vtree Vtree::LeftLinear(const std::vector<Var>& order) {
  TBC_CHECK(!order.empty());
  Vtree t;
  VtreeId acc = t.AddLeaf(order.front());
  for (size_t i = 1; i < order.size(); ++i) {
    acc = t.AddInternal(acc, t.AddLeaf(order[i]));
  }
  t.root_ = acc;
  t.Finalize();
  return t;
}

VtreeId Vtree::BuildBalanced(const std::vector<Var>& order, size_t lo, size_t hi) {
  if (hi - lo == 1) return AddLeaf(order[lo]);
  const size_t mid = lo + (hi - lo + 1) / 2;
  const VtreeId l = BuildBalanced(order, lo, mid);
  const VtreeId r = BuildBalanced(order, mid, hi);
  return AddInternal(l, r);
}

Vtree Vtree::Balanced(const std::vector<Var>& order) {
  TBC_CHECK(!order.empty());
  Vtree t;
  t.root_ = t.BuildBalanced(order, 0, order.size());
  t.Finalize();
  return t;
}

Vtree Vtree::Constrained(const std::vector<Var>& top, const std::vector<Var>& bottom) {
  TBC_CHECK(!bottom.empty());
  Vtree t;
  VtreeId acc = t.BuildBalanced(bottom, 0, bottom.size());
  for (size_t i = top.size(); i-- > 0;) {
    acc = t.AddInternal(t.AddLeaf(top[i]), acc);
  }
  t.root_ = acc;
  t.Finalize();
  return t;
}

std::vector<Var> Vtree::IdentityOrder(size_t n) {
  std::vector<Var> order(n);
  for (size_t i = 0; i < n; ++i) order[i] = static_cast<Var>(i);
  return order;
}

bool Vtree::IsAncestorOrSelf(VtreeId a, VtreeId b) const {
  // Walk up from b; vtrees are shallow enough that this beats precomputing
  // Euler tours at our scales.
  for (VtreeId v = b; v != kInvalidVtree; v = nodes_[v].parent) {
    if (v == a) return true;
  }
  return false;
}

VtreeId Vtree::Lca(VtreeId a, VtreeId b) const {
  uint32_t da = Depth(a), db = Depth(b);
  while (da > db) {
    a = nodes_[a].parent;
    --da;
  }
  while (db > da) {
    b = nodes_[b].parent;
    --db;
  }
  while (a != b) {
    a = nodes_[a].parent;
    b = nodes_[b].parent;
  }
  return a;
}

uint32_t Vtree::Depth(VtreeId v) const {
  uint32_t d = 0;
  while (nodes_[v].parent != kInvalidVtree) {
    v = nodes_[v].parent;
    ++d;
  }
  return d;
}

std::vector<Var> Vtree::VarsBelow(VtreeId v) const {
  std::vector<Var> out;
  std::vector<VtreeId> stack = {v};
  while (!stack.empty()) {
    VtreeId cur = stack.back();
    stack.pop_back();
    if (IsLeaf(cur)) {
      out.push_back(nodes_[cur].var);
    } else {
      stack.push_back(nodes_[cur].right);
      stack.push_back(nodes_[cur].left);
    }
  }
  return out;
}

std::string Vtree::ToString(VtreeId v) const {
  if (IsLeaf(v)) return std::to_string(nodes_[v].var);
  return "(" + ToString(nodes_[v].left) + " " + ToString(nodes_[v].right) + ")";
}

std::string Vtree::ToFileString() const {
  // Emit children before parents so the root is the final line; ids are
  // renumbered to emission order as the SDD-library format expects.
  std::string out = "vtree " + std::to_string(nodes_.size()) + "\n";
  std::vector<uint32_t> file_id(nodes_.size(), 0);
  uint32_t next = 0;
  std::vector<std::pair<VtreeId, int>> stack = {{root_, 0}};
  while (!stack.empty()) {
    auto& [v, state] = stack.back();
    if (IsLeaf(v)) {
      file_id[v] = next++;
      out += "L " + std::to_string(file_id[v]) + " " +
             std::to_string(nodes_[v].var + 1) + "\n";
      stack.pop_back();
    } else if (state == 0) {
      state = 1;
      stack.push_back({nodes_[v].left, 0});
    } else if (state == 1) {
      state = 2;
      stack.push_back({nodes_[v].right, 0});
    } else {
      file_id[v] = next++;
      out += "I " + std::to_string(file_id[v]) + " " +
             std::to_string(file_id[nodes_[v].left]) + " " +
             std::to_string(file_id[nodes_[v].right]) + "\n";
      stack.pop_back();
    }
  }
  return out;
}

Result<Vtree> Vtree::Parse(const std::string& text) {
  Vtree t;
  std::unordered_map<uint32_t, VtreeId> node_of_file_id;
  bool saw_header = false;
  VtreeId last = kInvalidVtree;
  size_t line_start = 0;
  while (line_start <= text.size()) {
    size_t line_end = text.find('\n', line_start);
    if (line_end == std::string::npos) line_end = text.size();
    const std::string line = text.substr(line_start, line_end - line_start);
    line_start = line_end + 1;
    if (line.empty() || line[0] == 'c') continue;
    char kind = 0;
    long a = 0, b = 0, c = 0;
    if (std::sscanf(line.c_str(), "%c %ld %ld %ld", &kind, &a, &b, &c) < 1) {
      continue;
    }
    if (kind == 'v') {
      saw_header = true;
    } else if (kind == 'L') {
      if (b < 1) return Status::InvalidInput("bad vtree leaf line: " + line);
      const Var var = static_cast<Var>(b - 1);
      // AddLeaf aborts on a repeated variable; adversarial files must get
      // a typed rejection instead.
      if (var < t.leaf_of_var_.size() && t.leaf_of_var_[var] != kInvalidVtree) {
        return Status::InvalidInput("variable appears in two vtree leaves: " +
                                    line);
      }
      last = t.AddLeaf(var);
      node_of_file_id[static_cast<uint32_t>(a)] = last;
    } else if (kind == 'I') {
      auto lit = node_of_file_id.find(static_cast<uint32_t>(b));
      auto rit = node_of_file_id.find(static_cast<uint32_t>(c));
      if (lit == node_of_file_id.end() || rit == node_of_file_id.end()) {
        return Status::InvalidInput("vtree forward reference: " + line);
      }
      last = t.AddInternal(lit->second, rit->second);
      node_of_file_id[static_cast<uint32_t>(a)] = last;
    } else {
      return Status::InvalidInput("unknown vtree line: " + line);
    }
  }
  if (!saw_header) return Status::InvalidInput("missing vtree header");
  if (last == kInvalidVtree) return Status::InvalidInput("empty vtree");
  t.root_ = last;
  // The last-defined node is the root only if every other node hangs off
  // it. A file defining a forest (or reusing one node under two parents,
  // which orphans the first parent) used to be accepted silently, with
  // whole subtrees invisible to position/LCA queries.
  for (VtreeId v = 0; v < t.nodes_.size(); ++v) {
    if (v != t.root_ && t.nodes_[v].parent == kInvalidVtree) {
      return Status::InvalidInput(
          "vtree file defines a forest: node defined on line-order index " +
          std::to_string(v) + " is not reachable from the root");
    }
  }
  t.Finalize();
  return t;
}

bool Vtree::RotateRightAt(VtreeId v) {
  if (IsLeaf(v) || IsLeaf(nodes_[v].left)) return false;
  const VtreeId l = nodes_[v].left;
  const VtreeId a = nodes_[l].left;
  const VtreeId b = nodes_[l].right;
  const VtreeId c = nodes_[v].right;
  nodes_[v].left = a;
  nodes_[v].right = l;
  nodes_[l].left = b;
  nodes_[l].right = c;
  nodes_[a].parent = v;
  nodes_[c].parent = l;  // b keeps parent l; l keeps parent v
  nodes_[l].num_vars_below =
      nodes_[b].num_vars_below + nodes_[c].num_vars_below;
  // In-order [a] l [b] v [c] becomes [a] v [b] l [c]: only v and l trade
  // positions, the a/b/c subtrees keep theirs.
  std::swap(nodes_[v].position, nodes_[l].position);
  return true;
}

bool Vtree::RotateLeftAt(VtreeId v) {
  if (IsLeaf(v) || IsLeaf(nodes_[v].right)) return false;
  const VtreeId r = nodes_[v].right;
  const VtreeId a = nodes_[v].left;
  const VtreeId b = nodes_[r].left;
  const VtreeId c = nodes_[r].right;
  nodes_[v].left = r;
  nodes_[v].right = c;
  nodes_[r].left = a;
  nodes_[r].right = b;
  nodes_[a].parent = r;
  nodes_[c].parent = v;  // b keeps parent r; r keeps parent v
  nodes_[r].num_vars_below =
      nodes_[a].num_vars_below + nodes_[b].num_vars_below;
  std::swap(nodes_[v].position, nodes_[r].position);
  return true;
}

bool Vtree::SwapChildrenAt(VtreeId v) {
  if (IsLeaf(v)) return false;
  // A subtree occupies a contiguous in-order position range starting at
  // its leftmost leaf; re-walk the swapped subtree from that base.
  VtreeId leftmost = v;
  while (!IsLeaf(leftmost)) leftmost = nodes_[leftmost].left;
  uint32_t next = nodes_[leftmost].position;
  std::swap(nodes_[v].left, nodes_[v].right);
  std::vector<std::pair<VtreeId, int>> stack = {{v, 0}};
  while (!stack.empty()) {
    auto& [n, state] = stack.back();
    if (IsLeaf(n)) {
      nodes_[n].position = next++;
      stack.pop_back();
    } else if (state == 0) {
      state = 1;
      stack.push_back({nodes_[n].left, 0});
    } else if (state == 1) {
      nodes_[n].position = next++;
      state = 2;
      stack.push_back({nodes_[n].right, 0});
    } else {
      stack.pop_back();
    }
  }
  return true;
}

Vtree Vtree::Random(std::vector<Var> vars, Rng& rng) {
  TBC_CHECK(!vars.empty());
  // Shuffle, then build with uniform random split points.
  for (size_t i = vars.size(); i > 1; --i) {
    std::swap(vars[i - 1], vars[rng.Below(i)]);
  }
  Vtree t;
  std::function<VtreeId(size_t, size_t)> build = [&](size_t lo, size_t hi) -> VtreeId {
    if (hi - lo == 1) return t.AddLeaf(vars[lo]);
    const size_t mid = lo + 1 + rng.Below(hi - lo - 1);
    const VtreeId l = build(lo, mid);
    const VtreeId r = build(mid, hi);
    return t.AddInternal(l, r);
  };
  t.root_ = build(0, vars.size());
  t.Finalize();
  return t;
}

}  // namespace tbc
