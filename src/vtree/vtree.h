#ifndef TBC_VTREE_VTREE_H_
#define TBC_VTREE_VTREE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "base/random.h"
#include "base/result.h"
#include "logic/lit.h"

namespace tbc {

/// Node index within a Vtree.
using VtreeId = uint32_t;
constexpr VtreeId kInvalidVtree = static_cast<VtreeId>(-1);

/// A vtree: a full binary tree whose leaves are in one-to-one correspondence
/// with Boolean variables [Pipatsrisawat & Darwiche 2008].
///
/// Vtrees drive *structured decomposability*: every and-gate of a structured
/// DNNF/SDD respects some vtree node v, with its two inputs ranging over the
/// variables of v's left and right subtrees. The vtree is ordered (left vs
/// right children matter, as in SDDs). Special shapes:
///   - right-linear vtrees make SDDs coincide with OBDDs (paper Fig 10c);
///   - constrained vtrees for X|Y place Y on a right-spine prefix so that
///     E-MAJSAT / MAP over Y become linear-time on the compiled SDD
///     (paper Fig 10b, [Oztok, Choi & Darwiche 2016]).
class Vtree {
 public:
  /// Right-linear vtree over the variable order (Fig 10c): every internal
  /// node's left child is a leaf.
  static Vtree RightLinear(const std::vector<Var>& order);
  /// Left-linear vtree over the variable order.
  static Vtree LeftLinear(const std::vector<Var>& order);
  /// Balanced vtree over the variable order (Fig 10a shape).
  static Vtree Balanced(const std::vector<Var>& order);
  /// Constrained vtree for bottom|top (Fig 10b): a right-linear spine over
  /// `top` whose final right child is a balanced vtree over `bottom`. The
  /// node over `bottom` is reachable from the root through right children
  /// only, as Figure 10 requires.
  static Vtree Constrained(const std::vector<Var>& top,
                           const std::vector<Var>& bottom);

  /// Identity order 0..n-1 helpers.
  static std::vector<Var> IdentityOrder(size_t n);

  VtreeId root() const { return root_; }
  size_t num_nodes() const { return nodes_.size(); }
  size_t num_vars() const { return leaf_of_var_.size(); }

  bool IsLeaf(VtreeId v) const { return nodes_[v].var != kInvalidVar; }
  Var var(VtreeId v) const { return nodes_[v].var; }
  VtreeId left(VtreeId v) const { return nodes_[v].left; }
  VtreeId right(VtreeId v) const { return nodes_[v].right; }
  VtreeId parent(VtreeId v) const { return nodes_[v].parent; }
  /// In-order position (leaves and internal nodes interleaved); ancestors
  /// of v have positions spanning v's subtree span.
  uint32_t position(VtreeId v) const { return nodes_[v].position; }
  /// Leaf node for a variable.
  VtreeId LeafOfVar(Var v) const { return leaf_of_var_[v]; }

  /// True iff `a` is `b` or an ancestor of `b`.
  bool IsAncestorOrSelf(VtreeId a, VtreeId b) const;
  /// Lowest common ancestor.
  VtreeId Lca(VtreeId a, VtreeId b) const;

  /// Variables in the subtree rooted at v, in leaf order.
  std::vector<Var> VarsBelow(VtreeId v) const;
  /// Number of variables below v.
  size_t NumVarsBelow(VtreeId v) const { return nodes_[v].num_vars_below; }

  /// Depth of node (root is 0).
  uint32_t Depth(VtreeId v) const;

  /// Renders as s-expression, e.g. "((0 1) (2 3))" (for tests/docs).
  std::string ToString() const { return ToString(root_); }
  std::string ToString(VtreeId v) const;

  /// Serializes in the SDD-library vtree exchange format:
  ///   vtree <count>
  ///   L <id> <dimacs_var>      (leaf; variables 1-based as in the format)
  ///   I <id> <left_id> <right_id>
  /// The last line defines the root.
  std::string ToFileString() const;
  /// Parses the format above.
  static Result<Vtree> Parse(const std::string& text);

  /// Random vtree over the variables (uniform recursive splits) — used by
  /// vtree search and for property tests.
  static Vtree Random(std::vector<Var> vars, Rng& rng);

  /// In-place vtree surgery for dynamic SDD minimization [Choi & Darwiche
  /// 2013]. Each returns false — leaving the tree untouched — when the
  /// shape does not permit the move: rotations need an internal node with
  /// an internal left (right) child, swap any internal node. Node ids are
  /// stable across all three (only child/parent links, in-order positions
  /// and var counts change), which is what lets SddManager relabel live
  /// SDD nodes instead of rebuilding them. RotateRightAt(v) and
  /// RotateLeftAt(v) are exact inverses; SwapChildrenAt is self-inverse.
  bool RotateRightAt(VtreeId v);   // v=(l=(a,b), c) -> v=(a, l=(b,c))
  bool RotateLeftAt(VtreeId v);    // v=(a, r=(b,c)) -> v=(r=(a,b), c)
  bool SwapChildrenAt(VtreeId v);  // v=(a, b)       -> v=(b, a)

 private:
  struct Node {
    Var var = kInvalidVar;  // valid iff leaf
    VtreeId left = kInvalidVtree;
    VtreeId right = kInvalidVtree;
    VtreeId parent = kInvalidVtree;
    uint32_t position = 0;
    uint32_t num_vars_below = 0;
  };

  VtreeId AddLeaf(Var v);
  VtreeId AddInternal(VtreeId l, VtreeId r);
  // Builds a balanced subtree over order[lo..hi).
  VtreeId BuildBalanced(const std::vector<Var>& order, size_t lo, size_t hi);
  void Finalize();

  std::vector<Node> nodes_;
  std::vector<VtreeId> leaf_of_var_;
  VtreeId root_ = kInvalidVtree;
};

}  // namespace tbc

#endif  // TBC_VTREE_VTREE_H_
