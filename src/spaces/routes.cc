#include "spaces/routes.h"

#include <string>

#include "base/check.h"
#include "base/flat_table.h"
#include "sdd/from_obdd.h"

namespace tbc {

namespace {

// Simpath frontier DP. `mate` is the classic mate array over ALL vertices:
//   mate[v] == v          — v touched by no chosen edge (degree 0)
//   mate[v] == kInternal  — v saturated (degree 2, or terminal absorbed)
//   mate[v] == w          — v is an endpoint of a fragment ending at w.
// Two states are equivalent iff they agree on `done` and on the mate
// entries of the current frontier (mate values may name non-frontier
// vertices — e.g. a terminal that exited with an open fragment — and those
// ids are part of the canonical key through the frontier entries).
constexpr GraphNode kInternal = static_cast<GraphNode>(-2);

struct Frontier {
  std::vector<GraphNode> mate;
  bool done = false;
};

class SimpathCompiler {
 public:
  SimpathCompiler(ObddManager& mgr, const Graph& g, GraphNode s, GraphNode t)
      : mgr_(mgr), graph_(g), s_(s), t_(t) {
    first_edge_.assign(g.num_nodes(), static_cast<uint32_t>(-1));
    last_edge_.assign(g.num_nodes(), 0);
    for (uint32_t e = 0; e < g.num_edges(); ++e) {
      for (GraphNode v : {g.edge_u(e), g.edge_v(e)}) {
        if (first_edge_[v] == static_cast<uint32_t>(-1)) first_edge_[v] = e;
        last_edge_[v] = e;
      }
    }
    // frontier_[i]: vertices live while deciding edge i (touched by an
    // earlier edge, still incident to edge i or later).
    frontier_.resize(g.num_edges());
    for (GraphNode v = 0; v < g.num_nodes(); ++v) {
      if (first_edge_[v] == static_cast<uint32_t>(-1)) continue;
      for (uint32_t e = first_edge_[v] + 1; e <= last_edge_[v]; ++e) {
        frontier_[e].push_back(v);
      }
    }
  }

  ObddId Compile() {
    Frontier init;
    init.mate.resize(graph_.num_nodes());
    for (GraphNode v = 0; v < graph_.num_nodes(); ++v) init.mate[v] = v;
    return Rec(0, init);
  }

 private:
  // One string, built in a reusable buffer: edge index + done flag +
  // frontier mate entries (the canonical simpath state).
  const std::string& Key(uint32_t i, const Frontier& f) {
    key_scratch_.clear();
    key_scratch_.append(reinterpret_cast<const char*>(&i), sizeof(i));
    key_scratch_.push_back(f.done ? 1 : 0);
    for (GraphNode v : frontier_[i]) {
      key_scratch_.append(reinterpret_cast<const char*>(&f.mate[v]),
                          sizeof(GraphNode));
    }
    return key_scratch_;
  }

  // Exit checks for endpoints of edge `e` leaving the frontier.
  bool ProcessExits(uint32_t e, const Frontier& f) const {
    for (GraphNode v : {graph_.edge_u(e), graph_.edge_v(e)}) {
      if (last_edge_[v] != e) continue;
      const GraphNode m = f.mate[v];
      if (v == s_ || v == t_) {
        // Terminals need final degree exactly 1: either absorbed into the
        // completed path, or left as an open fragment endpoint (to be
        // closed later through its partner).
        if (f.done) {
          if (m != kInternal) return false;
        } else {
          if (m == v || m == kInternal) return false;
        }
      } else {
        // Ordinary vertices: degree 0 (untouched) or 2 (internal).
        if (m != v && m != kInternal) return false;
      }
    }
    return true;
  }

  ObddId Rec(uint32_t i, const Frontier& f) {
    if (i == graph_.num_edges()) return f.done ? mgr_.True() : mgr_.False();
    if (const ObddId* hit = memo_.Find(Key(i, f))) return *hit;
    const std::string key = Key(i, f);  // owned copy survives the recursion

    const GraphNode u = graph_.edge_u(i);
    const GraphNode v = graph_.edge_v(i);

    // Low branch: edge absent.
    const ObddId lo = ProcessExits(i, f) ? Rec(i + 1, f) : mgr_.False();

    // High branch: edge taken.
    ObddId hi = mgr_.False();
    const GraphNode mu = f.mate[u];
    const GraphNode mv = f.mate[v];
    bool valid = !f.done && mu != kInternal && mv != kInternal && mu != v;
    if (valid) {
      Frontier g = f;
      const GraphNode a = mu, b = mv;  // endpoints of the merged fragment
      g.mate[u] = kInternal;
      g.mate[v] = kInternal;
      if ((a == s_ && b == t_) || (a == t_ && b == s_)) {
        g.done = true;
        g.mate[a] = kInternal;
        g.mate[b] = kInternal;
      } else {
        g.mate[a] = b;
        g.mate[b] = a;
      }
      hi = ProcessExits(i, g) ? Rec(i + 1, g) : mgr_.False();
    }

    const ObddId result = mgr_.MakeNode(static_cast<Var>(i), lo, hi);
    memo_.Insert(key, result);
    return result;
  }

  ObddManager& mgr_;
  const Graph& graph_;
  GraphNode s_, t_;
  std::vector<uint32_t> first_edge_, last_edge_;
  std::vector<std::vector<GraphNode>> frontier_;
  FlatMap<std::string, ObddId> memo_;
  std::string key_scratch_;
};

}  // namespace

ObddId CompileSimplePaths(ObddManager& mgr, const Graph& graph, GraphNode s,
                          GraphNode t) {
  TBC_CHECK(s != t);
  TBC_CHECK(mgr.num_vars() >= graph.num_edges());
  SimpathCompiler compiler(mgr, graph, s, t);
  return compiler.Compile();
}

RouteSpace::RouteSpace(const Graph& graph, GraphNode s, GraphNode t)
    : graph_(graph), s_(s), t_(t) {
  ObddManager obdd(Vtree::IdentityOrder(graph_.num_edges()));
  const ObddId f = CompileSimplePaths(obdd, graph_, s, t);
  TBC_CHECK_MSG(f != obdd.False(), "no route from s to t");
  sdd_ = std::make_unique<SddManager>(
      Vtree::RightLinear(Vtree::IdentityOrder(graph_.num_edges())));
  base_ = ObddToSdd(obdd, f, *sdd_);
}

uint64_t RouteSpace::NumRoutes() { return sdd_->ModelCount(base_).ToU64(); }

Assignment RouteSpace::RandomRoute(Rng& rng) const {
  // Uniform over routes: pick the k-th path in DFS enumeration order.
  const uint64_t total = graph_.CountSimplePaths(s_, t_);
  TBC_CHECK(total > 0);
  const uint64_t target = rng.Below(total);
  Assignment chosen(graph_.num_edges(), false);
  uint64_t index = 0;
  graph_.EnumerateSimplePaths(s_, t_, [&](const std::vector<uint32_t>& path) {
    if (index++ == target) {
      for (uint32_t e : path) chosen[e] = true;
    }
  });
  return chosen;
}

}  // namespace tbc
