#ifndef TBC_SPACES_ROUTES_H_
#define TBC_SPACES_ROUTES_H_

#include <memory>

#include "obdd/obdd.h"
#include "psdd/psdd.h"
#include "sdd/sdd.h"
#include "spaces/graph.h"

namespace tbc {

/// Compiles the set of simple s-t routes of a graph into an OBDD over its
/// edge variables (paper §4.1, Fig 16).
///
/// This is the Simpath frontier algorithm (Knuth; used for SDD route
/// compilation by [Nishino et al. 2017] and the paper's route/hierarchical
/// map line [14, 16, 79]): edges are decided in order, and states that
/// agree on the *frontier* — the partial-path fragments still visible to
/// undecided edges, tracked as a mate array — are merged, so the result is
/// polynomial in practice on grids. The OBDD's satisfying assignments are
/// exactly the edge sets forming a simple path from s to t (the red
/// assignment of Fig 16 satisfies it, the orange one does not).
/// `mgr` must use the identity order over the graph's edge ids.
ObddId CompileSimplePaths(ObddManager& mgr, const Graph& graph, GraphNode s,
                          GraphNode t);

/// A route probability space: the compiled route OBDD re-expressed as an
/// SDD (right-linear vtree, the Fig 10c correspondence) ready for PSDD
/// parameter learning from GPS-style route data (paper §4.1).
class RouteSpace {
 public:
  RouteSpace(const Graph& graph, GraphNode s, GraphNode t);

  const Graph& graph() const { return graph_; }
  SddManager& sdd() { return *sdd_; }
  SddId base() const { return base_; }
  /// Number of valid routes.
  uint64_t NumRoutes();

  /// A PSDD over the route space with uniform parameters, ready to learn.
  Psdd MakePsdd() { return Psdd(*sdd_, base_); }

  /// Draws a route uniformly at random (rejection-free, via the DFS
  /// enumeration index); used to synthesize GPS-style datasets.
  Assignment RandomRoute(Rng& rng) const;

 private:
  Graph graph_;
  GraphNode s_, t_;
  std::unique_ptr<SddManager> sdd_;
  SddId base_;
};

}  // namespace tbc

#endif  // TBC_SPACES_ROUTES_H_
