#ifndef TBC_SPACES_HIERARCHICAL_H_
#define TBC_SPACES_HIERARCHICAL_H_

#include <cstdint>
#include <vector>

#include "spaces/graph.h"

namespace tbc {

/// Hierarchical maps (paper §4.2, Figs 18-20 and 22; [Choi, Shen &
/// Darwiche 2017; Shen et al. 2019]).
///
/// A grid map is partitioned into square regions (the Westside /
/// Santa Monica / Culver City nesting of Fig 18). Once the crossing edges
/// used to enter and exit a region are fixed, navigation inside the region
/// is independent of the rest of the map (Fig 20's conditional space), so
/// the hierarchical representation compiles one small circuit per region
/// per (entry, exit) boundary pair plus one top-level circuit over region
/// crossings — instead of one monolithic circuit over the whole map. The
/// modeled route space is the paper line's hierarchical semantics: routes
/// that enter each region at most once.
class HierarchicalMap {
 public:
  /// rows×cols grid partitioned into block×block regions (block must
  /// divide both rows and cols).
  HierarchicalMap(size_t rows, size_t cols, size_t block);

  const Graph& grid() const { return grid_; }
  size_t num_regions() const { return region_rows_ * region_cols_; }
  size_t RegionOf(GraphNode v) const;

  /// Edge ids fully inside region r, and edges crossing regions.
  std::vector<uint32_t> LocalEdges(size_t r) const;
  std::vector<uint32_t> CrossingEdges() const;
  /// Boundary vertices of region r (incident to a crossing edge).
  std::vector<GraphNode> BoundaryVertices(size_t r) const;

  struct CompilationStats {
    // Flat compilation: one Simpath OBDD over the whole grid.
    size_t flat_nodes = 0;
    uint64_t flat_routes = 0;
    // Hierarchical compilation: top-level region-graph OBDD plus one
    // segment OBDD per region per needed (entry, exit) pair.
    size_t top_level_nodes = 0;
    size_t region_nodes = 0;  // Σ segment circuit nodes
    size_t hier_nodes = 0;    // top_level_nodes + region_nodes
    uint64_t hier_routes = 0; // routes entering each region at most once
  };
  /// Compiles both representations for s-t routes and reports sizes and
  /// counts (the Fig 22 scaling experiment's measurement).
  CompilationStats Compile(GraphNode s, GraphNode t) const;

 private:
  // Region subgraph with local vertex ids; mapping kept for queries.
  struct RegionGraph {
    Graph graph;
    std::vector<GraphNode> local_of_global;  // -1 if outside
    std::vector<GraphNode> global_of_local;
  };
  RegionGraph SubgraphOf(size_t r) const;

  // Number of simple a-b paths inside region r (a == b counts as 1: the
  // pass-through/endpoint case).
  uint64_t SegmentCount(size_t r, GraphNode a, GraphNode b) const;

  size_t rows_, cols_, block_;
  size_t region_rows_, region_cols_;
  Graph grid_;
};

}  // namespace tbc

#endif  // TBC_SPACES_HIERARCHICAL_H_
