#include "spaces/hierarchical.h"

#include <algorithm>
#include <map>
#include <set>
#include <utility>

#include "base/check.h"
#include "base/flat_table.h"
#include "obdd/obdd.h"
#include "spaces/routes.h"
#include "vtree/vtree.h"

namespace tbc {
namespace {

// Memo keys for the hierarchical route count (see Compile below).
struct SegKey {
  uint32_t r;
  GraphNode a, b;
  bool operator==(const SegKey&) const = default;
  friend uint64_t HashValue(const SegKey& k) {
    return HashU64((uint64_t{k.r} << 42) ^ (uint64_t{k.a} << 21) ^ k.b);
  }
};

struct CountKey {
  uint64_t mask;
  uint32_t r;
  GraphNode entry;
  bool operator==(const CountKey&) const = default;
  friend uint64_t HashValue(const CountKey& k) {
    return HashU64(k.mask) ^ HashU64((uint64_t{k.r} << 32) | k.entry);
  }
};

}  // namespace

HierarchicalMap::HierarchicalMap(size_t rows, size_t cols, size_t block)
    : rows_(rows),
      cols_(cols),
      block_(block),
      region_rows_(rows / block),
      region_cols_(cols / block),
      grid_(Graph::Grid(rows, cols)) {
  TBC_CHECK_MSG(rows % block == 0 && cols % block == 0,
                "block must divide grid dimensions");
}

size_t HierarchicalMap::RegionOf(GraphNode v) const {
  const size_t r = v / cols_;
  const size_t c = v % cols_;
  return (r / block_) * region_cols_ + (c / block_);
}

std::vector<uint32_t> HierarchicalMap::LocalEdges(size_t r) const {
  std::vector<uint32_t> out;
  for (uint32_t e = 0; e < grid_.num_edges(); ++e) {
    if (RegionOf(grid_.edge_u(e)) == r && RegionOf(grid_.edge_v(e)) == r) {
      out.push_back(e);
    }
  }
  return out;
}

std::vector<uint32_t> HierarchicalMap::CrossingEdges() const {
  std::vector<uint32_t> out;
  for (uint32_t e = 0; e < grid_.num_edges(); ++e) {
    if (RegionOf(grid_.edge_u(e)) != RegionOf(grid_.edge_v(e))) out.push_back(e);
  }
  return out;
}

std::vector<GraphNode> HierarchicalMap::BoundaryVertices(size_t r) const {
  std::set<GraphNode> out;
  for (uint32_t e : CrossingEdges()) {
    if (RegionOf(grid_.edge_u(e)) == r) out.insert(grid_.edge_u(e));
    if (RegionOf(grid_.edge_v(e)) == r) out.insert(grid_.edge_v(e));
  }
  return {out.begin(), out.end()};
}

HierarchicalMap::RegionGraph HierarchicalMap::SubgraphOf(size_t r) const {
  RegionGraph rg{Graph(block_ * block_), {}, {}};
  rg.local_of_global.assign(grid_.num_nodes(), kInvalidVar);
  for (GraphNode v = 0; v < grid_.num_nodes(); ++v) {
    if (RegionOf(v) == r) {
      rg.local_of_global[v] = static_cast<GraphNode>(rg.global_of_local.size());
      rg.global_of_local.push_back(v);
    }
  }
  for (uint32_t e : LocalEdges(r)) {
    rg.graph.AddEdge(rg.local_of_global[grid_.edge_u(e)],
                     rg.local_of_global[grid_.edge_v(e)]);
  }
  return rg;
}

uint64_t HierarchicalMap::SegmentCount(size_t r, GraphNode a, GraphNode b) const {
  if (a == b) return 1;
  const RegionGraph rg = SubgraphOf(r);
  return rg.graph.CountSimplePaths(rg.local_of_global[a], rg.local_of_global[b]);
}

HierarchicalMap::CompilationStats HierarchicalMap::Compile(GraphNode s,
                                                           GraphNode t) const {
  CompilationStats stats;

  // --- Flat compilation.
  {
    ObddManager mgr(Vtree::IdentityOrder(grid_.num_edges()));
    const ObddId f = CompileSimplePaths(mgr, grid_, s, t);
    stats.flat_nodes = mgr.Size(f);
    stats.flat_routes = mgr.ModelCount(f).ToU64();
  }

  // --- Region graph (super-nodes = regions, one super-edge per adjacent
  // region pair) and its top-level route circuit.
  std::map<std::pair<size_t, size_t>, std::vector<uint32_t>> crossings;
  for (uint32_t e : CrossingEdges()) {
    size_t r1 = RegionOf(grid_.edge_u(e));
    size_t r2 = RegionOf(grid_.edge_v(e));
    if (r1 > r2) std::swap(r1, r2);
    crossings[{r1, r2}].push_back(e);
  }
  Graph region_graph(num_regions());
  for (const auto& [pair, unused] : crossings) {
    region_graph.AddEdge(static_cast<GraphNode>(pair.first),
                         static_cast<GraphNode>(pair.second));
  }
  const size_t rs = RegionOf(s);
  const size_t rt = RegionOf(t);
  if (rs != rt) {
    ObddManager mgr(Vtree::IdentityOrder(region_graph.num_edges()));
    const ObddId f =
        CompileSimplePaths(mgr, region_graph, static_cast<GraphNode>(rs),
                           static_cast<GraphNode>(rt));
    stats.top_level_nodes = mgr.Size(f);
  } else {
    stats.top_level_nodes = 1;
  }

  // --- Per-region conditional segment circuits: one per (entry, exit)
  // boundary pair (plus s/t anchors in their regions).
  for (size_t r = 0; r < num_regions(); ++r) {
    std::vector<GraphNode> anchors = BoundaryVertices(r);
    if (r == rs && std::find(anchors.begin(), anchors.end(), s) == anchors.end()) {
      anchors.push_back(s);
    }
    if (r == rt && std::find(anchors.begin(), anchors.end(), t) == anchors.end()) {
      anchors.push_back(t);
    }
    const RegionGraph rg = SubgraphOf(r);
    for (size_t i = 0; i < anchors.size(); ++i) {
      for (size_t j = i + 1; j < anchors.size(); ++j) {
        ObddManager mgr(Vtree::IdentityOrder(rg.graph.num_edges()));
        const ObddId f =
            CompileSimplePaths(mgr, rg.graph, rg.local_of_global[anchors[i]],
                               rg.local_of_global[anchors[j]]);
        stats.region_nodes += mgr.Size(f);
      }
    }
  }
  stats.hier_nodes = stats.top_level_nodes + stats.region_nodes;

  // --- Hierarchical route count: routes that enter each region at most
  // once. DFS over region sequences with concrete crossing-edge choices.
  // Kernel-layer hot loop: crossing edges are bucketed into per-region
  // ports up front (the old scan touched every crossing edge, with two
  // RegionOf calls each, at every DFS node), segment counts live in a
  // flat table instead of a std::map, and — when the region count fits a
  // 64-bit mask — whole DFS subtrees are memoized on their true state
  // (region, entry vertex, visited set), which collapses the exponential
  // route-sequence tree into a DP over distinct states.
  struct Port {
    GraphNode exit;       // crossing endpoint inside the region
    uint32_t neighbor;    // adjacent region
    GraphNode entry;      // crossing endpoint inside the neighbor
  };
  std::vector<std::vector<Port>> ports(num_regions());
  for (uint32_t e : CrossingEdges()) {
    const GraphNode a = grid_.edge_u(e), b = grid_.edge_v(e);
    const uint32_t ra = static_cast<uint32_t>(RegionOf(a));
    const uint32_t rb = static_cast<uint32_t>(RegionOf(b));
    ports[ra].push_back({a, rb, b});
    ports[rb].push_back({b, ra, a});
  }
  std::vector<RegionGraph> subgraphs;
  subgraphs.reserve(num_regions());
  for (size_t r = 0; r < num_regions(); ++r) subgraphs.push_back(SubgraphOf(r));

  FlatMap<SegKey, uint64_t> seg_memo;
  auto segment = [&](size_t r, GraphNode a, GraphNode b) -> uint64_t {
    if (a == b) return 1;
    const SegKey key{static_cast<uint32_t>(r), std::min(a, b), std::max(a, b)};
    if (const uint64_t* hit = seg_memo.Find(key)) return *hit;
    const RegionGraph& rg = subgraphs[r];
    const uint64_t n = rg.graph.CountSimplePaths(rg.local_of_global[a],
                                                 rg.local_of_global[b]);
    seg_memo.Insert(key, n);
    return n;
  };

  const bool memoizable = num_regions() <= 64;
  FlatMap<CountKey, uint64_t> count_memo;
  uint64_t visited_mask = 0;
  std::vector<int8_t> visited(num_regions(), 0);
  auto count = [&](auto&& self, size_t r, GraphNode entry) -> uint64_t {
    // Key on the state *before* entering r: the result only depends on
    // (r, entry, set of regions already on the path).
    const CountKey key{visited_mask, static_cast<uint32_t>(r), entry};
    if (memoizable) {
      if (const uint64_t* hit = count_memo.Find(key)) return *hit;
    }
    visited[r] = 1;
    if (memoizable) visited_mask |= uint64_t{1} << r;
    uint64_t total = 0;
    if (r == rt) total += segment(r, entry, t);
    for (const Port& p : ports[r]) {
      if (visited[p.neighbor]) continue;
      const uint64_t segs = segment(r, entry, p.exit);
      if (segs == 0) continue;
      total += segs * self(self, p.neighbor, p.entry);
    }
    visited[r] = 0;
    if (memoizable) {
      visited_mask &= ~(uint64_t{1} << r);
      count_memo.Insert(key, total);
    }
    return total;
  };
  stats.hier_routes = count(count, rs, s);
  return stats;
}

}  // namespace tbc
