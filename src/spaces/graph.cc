#include "spaces/graph.h"

#include "base/check.h"

namespace tbc {

Graph Graph::Grid(size_t rows, size_t cols) {
  Graph g(rows * cols);
  auto id = [cols](size_t r, size_t c) {
    return static_cast<GraphNode>(r * cols + c);
  };
  // Row-interleaved edge order (each row's horizontals, then the verticals
  // leaving it): keeps the Simpath frontier one row wide, which is what
  // makes route compilation polynomial on grids.
  for (size_t r = 0; r < rows; ++r) {
    for (size_t c = 0; c + 1 < cols; ++c) g.AddEdge(id(r, c), id(r, c + 1));
    if (r + 1 < rows) {
      for (size_t c = 0; c < cols; ++c) g.AddEdge(id(r, c), id(r + 1, c));
    }
  }
  return g;
}

uint32_t Graph::AddEdge(GraphNode u, GraphNode v) {
  TBC_CHECK(u < num_nodes() && v < num_nodes() && u != v);
  const uint32_t e = static_cast<uint32_t>(edges_.size());
  edges_.push_back({u, v});
  adjacency_[u].push_back(e);
  adjacency_[v].push_back(e);
  return e;
}

void Graph::EnumerateSimplePaths(
    GraphNode s, GraphNode t,
    const std::function<void(const std::vector<uint32_t>&)>& on_path) const {
  std::vector<int8_t> visited(num_nodes(), 0);
  std::vector<uint32_t> path;
  std::function<void(GraphNode)> dfs = [&](GraphNode u) {
    if (u == t) {
      on_path(path);
      return;
    }
    visited[u] = 1;
    for (uint32_t e : adjacency_[u]) {
      const GraphNode w = edges_[e].first == u ? edges_[e].second : edges_[e].first;
      if (visited[w]) continue;
      path.push_back(e);
      dfs(w);
      path.pop_back();
    }
    visited[u] = 0;
  };
  dfs(s);
}

uint64_t Graph::CountSimplePaths(GraphNode s, GraphNode t) const {
  uint64_t count = 0;
  EnumerateSimplePaths(s, t, [&](const std::vector<uint32_t>&) { ++count; });
  return count;
}

bool Graph::IsSimplePath(const Assignment& edges, GraphNode s, GraphNode t) const {
  TBC_CHECK(edges.size() >= num_edges());
  // Degree constraints: s and t have degree 1, others 0 or 2.
  std::vector<uint32_t> degree(num_nodes(), 0);
  size_t used = 0;
  for (uint32_t e = 0; e < num_edges(); ++e) {
    if (!edges[e]) continue;
    ++degree[edges_[e].first];
    ++degree[edges_[e].second];
    ++used;
  }
  if (degree[s] != 1 || degree[t] != 1) return false;
  for (GraphNode v = 0; v < num_nodes(); ++v) {
    if (v != s && v != t && degree[v] != 0 && degree[v] != 2) return false;
  }
  // Connectivity: walk from s along used edges; must consume all of them.
  size_t walked = 0;
  GraphNode cur = s;
  uint32_t prev_edge = static_cast<uint32_t>(-1);
  while (cur != t) {
    uint32_t next = static_cast<uint32_t>(-1);
    for (uint32_t e : adjacency_[cur]) {
      if (edges[e] && e != prev_edge) {
        next = e;
        break;
      }
    }
    if (next == static_cast<uint32_t>(-1)) return false;
    cur = edges_[next].first == cur ? edges_[next].second : edges_[next].first;
    prev_edge = next;
    ++walked;
  }
  return walked == used;
}

}  // namespace tbc
