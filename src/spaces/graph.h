#ifndef TBC_SPACES_GRAPH_H_
#define TBC_SPACES_GRAPH_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "logic/lit.h"

namespace tbc {

/// Graph node index.
using GraphNode = uint32_t;

/// An undirected graph whose edges carry ids 0..m-1; edge i is Boolean
/// variable i in the route encodings (paper §4.1, Fig 16: "represent each
/// edge i in the map by a Boolean variable E_i").
class Graph {
 public:
  explicit Graph(size_t num_nodes) : adjacency_(num_nodes) {}

  /// Grid graph with rows×cols nodes; node (r, c) has index r*cols + c.
  /// Edges: all horizontal then vertical, row-major.
  static Graph Grid(size_t rows, size_t cols);

  /// Adds an undirected edge; returns its id (= its Boolean variable).
  uint32_t AddEdge(GraphNode u, GraphNode v);

  size_t num_nodes() const { return adjacency_.size(); }
  size_t num_edges() const { return edges_.size(); }
  GraphNode edge_u(uint32_t e) const { return edges_[e].first; }
  GraphNode edge_v(uint32_t e) const { return edges_[e].second; }
  /// Edge ids incident to a node.
  const std::vector<uint32_t>& incident(GraphNode v) const {
    return adjacency_[v];
  }

  /// Number of simple paths from s to t (DFS oracle; exponential).
  uint64_t CountSimplePaths(GraphNode s, GraphNode t) const;

  /// Invokes `on_path` with the edge-id set of every simple s-t path.
  void EnumerateSimplePaths(
      GraphNode s, GraphNode t,
      const std::function<void(const std::vector<uint32_t>&)>& on_path) const;

  /// True iff the assignment over edge variables is a valid simple s-t
  /// path (the Fig 16 validity check: connected, no cycles, degree-correct).
  bool IsSimplePath(const Assignment& edges, GraphNode s, GraphNode t) const;

 private:
  std::vector<std::pair<GraphNode, GraphNode>> edges_;
  std::vector<std::vector<uint32_t>> adjacency_;
};

}  // namespace tbc

#endif  // TBC_SPACES_GRAPH_H_
