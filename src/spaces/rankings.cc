#include "spaces/rankings.h"

#include <cmath>

#include "base/check.h"
#include "sdd/compile.h"
#include "vtree/vtree.h"

namespace tbc {

RankingSpace::RankingSpace(size_t n) : n_(n), constraint_(n * n) {
  TBC_CHECK(n >= 1);
  // Exactly-one position per item (rows) and item per position (columns).
  for (size_t i = 0; i < n_; ++i) {
    Clause row, col;
    for (size_t j = 0; j < n_; ++j) {
      row.push_back(Pos(VarOf(i, j)));
      col.push_back(Pos(VarOf(j, i)));
      for (size_t k = j + 1; k < n_; ++k) {
        constraint_.AddClause({Neg(VarOf(i, j)), Neg(VarOf(i, k))});
        constraint_.AddClause({Neg(VarOf(j, i)), Neg(VarOf(k, i))});
      }
    }
    constraint_.AddClause(row);
    constraint_.AddClause(col);
  }
  sdd_ = std::make_unique<SddManager>(
      Vtree::RightLinear(Vtree::IdentityOrder(num_vars())));
  base_ = CompileCnf(*sdd_, constraint_);
}

uint64_t RankingSpace::NumRankings() { return sdd_->ModelCount(base_).ToU64(); }

Assignment RankingSpace::Encode(const std::vector<uint32_t>& perm) const {
  TBC_CHECK(perm.size() == n_);
  Assignment x(num_vars(), false);
  for (size_t pos = 0; pos < n_; ++pos) x[VarOf(perm[pos], pos)] = true;
  return x;
}

std::vector<uint32_t> RankingSpace::Decode(const Assignment& x) const {
  std::vector<uint32_t> perm(n_, static_cast<uint32_t>(-1));
  for (size_t item = 0; item < n_; ++item) {
    for (size_t pos = 0; pos < n_; ++pos) {
      if (x[VarOf(item, pos)]) perm[pos] = static_cast<uint32_t>(item);
    }
  }
  return perm;
}

std::vector<uint32_t> RankingSpace::SampleMallows(
    const std::vector<uint32_t>& sigma, double phi, Rng& rng) const {
  TBC_CHECK(sigma.size() == n_);
  TBC_CHECK(phi > 0.0 && phi <= 1.0);
  // Repeated-insertion sampling: insert sigma's items in order; item k
  // goes to position j (0-based from the front of the current prefix of
  // length k) with probability phi^(k-j) / Σ_i phi^(k-i).
  std::vector<uint32_t> out;
  for (size_t k = 0; k < n_; ++k) {
    double z = 0.0;
    for (size_t j = 0; j <= k; ++j) z += std::pow(phi, static_cast<double>(k - j));
    double u = rng.Uniform() * z;
    size_t pos = k;
    for (size_t j = 0; j <= k; ++j) {
      const double w = std::pow(phi, static_cast<double>(k - j));
      if (u < w) {
        pos = j;
        break;
      }
      u -= w;
    }
    out.insert(out.begin() + static_cast<ptrdiff_t>(pos), sigma[k]);
  }
  return out;
}

size_t RankingSpace::KendallTau(const std::vector<uint32_t>& a,
                                const std::vector<uint32_t>& b) {
  TBC_CHECK(a.size() == b.size());
  const size_t n = a.size();
  std::vector<size_t> pos_b(n);
  for (size_t p = 0; p < n; ++p) pos_b[b[p]] = p;
  size_t discordant = 0;
  for (size_t p = 0; p < n; ++p) {
    for (size_t q = p + 1; q < n; ++q) {
      if (pos_b[a[p]] > pos_b[a[q]]) ++discordant;
    }
  }
  return discordant;
}

}  // namespace tbc
