#ifndef TBC_SPACES_RANKINGS_H_
#define TBC_SPACES_RANKINGS_H_

#include <memory>
#include <vector>

#include "base/random.h"
#include "logic/cnf.h"
#include "psdd/psdd.h"
#include "sdd/sdd.h"

namespace tbc {

/// Rankings (total orderings) of n items as a structured space
/// (paper §4.1, Fig 17 and [Choi, Van den Broeck & Darwiche 2015]).
///
/// Encoding: n² Boolean variables A_ij with A_ij true iff item i is in
/// position j; variable id = i*n + j. Valid rankings are the assignments
/// where every item has exactly one position and every position exactly
/// one item (the orange assignment of Fig 17, with item 2 in two
/// positions, is excluded).
class RankingSpace {
 public:
  explicit RankingSpace(size_t n);

  size_t n() const { return n_; }
  size_t num_vars() const { return n_ * n_; }
  Var VarOf(size_t item, size_t position) const {
    return static_cast<Var>(item * n_ + position);
  }

  /// The permutation constraint as CNF.
  const Cnf& constraint() const { return constraint_; }

  SddManager& sdd() { return *sdd_; }
  SddId base() const { return base_; }
  /// Number of valid rankings (should be n!).
  uint64_t NumRankings();

  /// PSDD over the ranking space (uniform parameters).
  Psdd MakePsdd() { return Psdd(*sdd_, base_); }

  /// Encodes a permutation (perm[position] = item) as an assignment.
  Assignment Encode(const std::vector<uint32_t>& perm) const;
  /// Decodes an assignment back to perm[position] = item.
  std::vector<uint32_t> Decode(const Assignment& x) const;

  /// Samples from the Mallows distribution with center `sigma` and
  /// dispersion phi in (0, 1] (phi = 1 is uniform) — the classical ranking
  /// model [Mallows 1957] the paper cites as the dedicated baseline.
  std::vector<uint32_t> SampleMallows(const std::vector<uint32_t>& sigma,
                                      double phi, Rng& rng) const;

  /// Kendall-tau distance between two rankings (perm[position] = item).
  static size_t KendallTau(const std::vector<uint32_t>& a,
                           const std::vector<uint32_t>& b);

 private:
  size_t n_;
  Cnf constraint_;
  std::unique_ptr<SddManager> sdd_;
  SddId base_;
};

}  // namespace tbc

#endif  // TBC_SPACES_RANKINGS_H_
